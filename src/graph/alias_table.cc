#include "graph/alias_table.h"

#include <limits>

namespace actor {

Status AliasTable::BuildInto(const std::vector<double>& weights,
                             std::vector<double>* prob,
                             std::vector<uint32_t>* alias,
                             std::vector<double>* norm_weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("alias table needs at least one weight");
  }
  if (weights.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("alias table too large");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("alias table weights must be >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("alias table weights sum to zero");
  }

  const std::size_t n = weights.size();
  std::vector<double>& norm = *norm_weights;
  norm.resize(n);
  for (std::size_t i = 0; i < n; ++i) norm[i] = weights[i] / total;

  // Scaled probabilities; "small" entries donate leftover mass from "large"
  // ones. `prob` doubles as the scaled-weight scratch until the donation
  // loop rewrites it with acceptance probabilities.
  std::vector<double>& scaled = *prob;
  scaled.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = norm[i] * static_cast<double>(n);
  }
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  alias->resize(n);
  for (std::size_t i = 0; i < n; ++i) (*alias)[i] = static_cast<uint32_t>(i);

  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    // scaled[s] < 1 is final: it becomes s's acceptance probability.
    (*alias)[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining entries have probability 1 (floating-point leftovers).
  for (uint32_t s : small) scaled[s] = 1.0;
  for (uint32_t l : large) scaled[l] = 1.0;

  // Invariants of a well-formed Walker table: every bucket keeps a valid
  // acceptance probability and alias index, and the reconstructed sampling
  // mass sum_i (prob[i] + donated mass) / n is exactly the normalized
  // weights, which must sum to ~1.
  if constexpr (kDebugChecksEnabled) {
    double mass = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ACTOR_DCHECK((*prob)[i] >= 0.0 && (*prob)[i] <= 1.0 + 1e-9)
          << "bucket " << i << " acceptance probability " << (*prob)[i];
      ACTOR_DCHECK((*alias)[i] < n)
          << "bucket " << i << " alias " << (*alias)[i] << " out of range";
      ACTOR_DCHECK_FINITE(norm[i]);
      mass += norm[i];
    }
    ACTOR_DCHECK(std::fabs(mass - 1.0) < 1e-6)
        << "normalized weights sum to " << mass;
  }

  return Status::OK();
}

Result<AliasTable> AliasTable::Create(const std::vector<double>& weights) {
  std::vector<double> prob;
  std::vector<uint32_t> alias;
  std::vector<double> norm;
  ACTOR_RETURN_NOT_OK(BuildInto(weights, &prob, &alias, &norm));
  return AliasTable(std::move(prob), std::move(alias), std::move(norm));
}

Status AliasTable::Rebuild(const std::vector<double>& weights) {
  return BuildInto(weights, &prob_, &alias_, &norm_weights_);
}

double AliasTable::Probability(std::size_t i) const {
  ACTOR_DCHECK(i < norm_weights_.size())
      << "Probability() index " << i << " out of range";
  return norm_weights_[i];
}

}  // namespace actor
