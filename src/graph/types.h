#ifndef ACTOR_GRAPH_TYPES_H_
#define ACTOR_GRAPH_TYPES_H_

#include <cstdint>

#include "util/result.h"

namespace actor {

/// Dense vertex identifier within one Heterograph.
using VertexId = int32_t;
inline constexpr VertexId kInvalidVertex = -1;

/// Vertex type set O_v = {T, L, W} of the activity graph (paper Def. 1)
/// plus U for users (the auxiliary type of LINE(U)/CrossMap(U) and the
/// vertex type of the user interaction graph, Def. 2).
enum class VertexType : uint8_t { kTime = 0, kLocation, kWord, kUser };
inline constexpr int kNumVertexTypes = 4;

/// Edge type set: O_e = {TL, LW, WT, WW} of the activity graph (Def. 1),
/// the inter-record meta-graph types M_inter = {UT, UW, UL} (paper §5.2.2),
/// and UU for the user interaction graph.
enum class EdgeType : uint8_t {
  kTL = 0,
  kLW,
  kWT,
  kWW,
  kUT,
  kUW,
  kUL,
  kUU,
};
inline constexpr int kNumEdgeTypes = 8;

/// Short name for a vertex type ("T", "L", "W", "U").
const char* VertexTypeName(VertexType type);

/// Short name for an edge type ("TL", "LW", ...).
const char* EdgeTypeName(EdgeType type);

/// The edge type connecting two vertex types, independent of order
/// (f_e of Def. 1 extended with the U types). Returns InvalidArgument for
/// unsupported pairs (there is no TT or LL edge type).
Result<EdgeType> EdgeTypeBetween(VertexType a, VertexType b);

}  // namespace actor

#endif  // ACTOR_GRAPH_TYPES_H_
