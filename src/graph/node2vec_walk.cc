#include "graph/node2vec_walk.h"

#include <algorithm>
#include <unordered_set>

namespace actor {
namespace {

/// Type-blind adjacency: for each vertex, neighbors and weights pooled
/// over all edge types, neighbor ids sorted for membership queries.
struct PooledAdjacency {
  std::vector<std::vector<VertexId>> neighbors;
  std::vector<std::vector<double>> weights;

  explicit PooledAdjacency(const Heterograph& graph) {
    const int32_t n = graph.num_vertices();
    neighbors.resize(n);
    weights.resize(n);
    for (VertexId v = 0; v < n; ++v) {
      // Gather, then sort jointly by neighbor id.
      std::vector<std::pair<VertexId, double>> row;
      for (int e = 0; e < kNumEdgeTypes; ++e) {
        const EdgeType et = static_cast<EdgeType>(e);
        const auto ns = graph.Neighbors(et, v);
        const auto ws = graph.NeighborWeights(et, v);
        for (std::size_t i = 0; i < ns.size(); ++i) {
          row.emplace_back(ns[i], ws[i]);
        }
      }
      std::sort(row.begin(), row.end());
      neighbors[v].reserve(row.size());
      weights[v].reserve(row.size());
      for (const auto& [nb, w] : row) {
        neighbors[v].push_back(nb);
        weights[v].push_back(w);
      }
    }
  }

  bool Connected(VertexId a, VertexId b) const {
    const auto& row = neighbors[a];
    return std::binary_search(row.begin(), row.end(), b);
  }
};

/// Weighted draw from a CDF built on the fly (degree-bounded cost).
VertexId DrawWeighted(const std::vector<VertexId>& candidates,
                      const std::vector<double>& weights, Rng& rng) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return kInvalidVertex;
  double u = rng.UniformDouble() * total;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return candidates[i];
  }
  return candidates.back();
}

}  // namespace

Result<std::vector<std::vector<VertexId>>> GenerateNode2vecWalks(
    const Heterograph& graph, const Node2vecWalkOptions& options) {
  if (!graph.finalized()) {
    return Status::FailedPrecondition("graph must be finalized");
  }
  if (options.p <= 0.0 || options.q <= 0.0) {
    return Status::InvalidArgument("p and q must be positive");
  }
  if (options.walk_length < 2 || options.walks_per_vertex < 1) {
    return Status::InvalidArgument("walk length/count must be positive");
  }
  const PooledAdjacency adj(graph);
  Rng rng(options.seed);
  std::vector<std::vector<VertexId>> walks;
  std::vector<double> biased;

  for (VertexId start = 0; start < graph.num_vertices(); ++start) {
    if (adj.neighbors[start].empty()) continue;
    for (int w = 0; w < options.walks_per_vertex; ++w) {
      std::vector<VertexId> walk{start};
      VertexId prev = kInvalidVertex;
      VertexId current = start;
      for (int step = 1; step < options.walk_length; ++step) {
        const auto& ns = adj.neighbors[current];
        const auto& ws = adj.weights[current];
        if (ns.empty()) break;
        VertexId next;
        if (prev == kInvalidVertex) {
          next = DrawWeighted(ns, ws, rng);
        } else {
          // Second-order bias: alpha = 1/p if returning, 1 if the next
          // vertex neighbors prev, 1/q otherwise.
          biased.resize(ns.size());
          for (std::size_t i = 0; i < ns.size(); ++i) {
            double alpha;
            if (ns[i] == prev) {
              alpha = 1.0 / options.p;
            } else if (adj.Connected(ns[i], prev)) {
              alpha = 1.0;
            } else {
              alpha = 1.0 / options.q;
            }
            biased[i] = ws[i] * alpha;
          }
          next = DrawWeighted(ns, biased, rng);
        }
        if (next == kInvalidVertex) break;
        walk.push_back(next);
        prev = current;
        current = next;
      }
      if (walk.size() >= 2) walks.push_back(std::move(walk));
    }
  }
  if (walks.empty()) {
    return Status::InvalidArgument("graph has no edges to walk on");
  }
  return walks;
}

}  // namespace actor
