#ifndef ACTOR_GRAPH_GRAPH_BUILDER_H_
#define ACTOR_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/corpus.h"
#include "graph/heterograph.h"
#include "hotspot/hotspot_detector.h"
#include "util/result.h"

namespace actor {

/// Options for activity / user-graph construction (paper §4.1, Algorithm 1
/// line 2).
struct GraphBuildOptions {
  /// Create UT/UW/UL edges from a record's author to its units.
  bool include_author_edges = true;
  /// Create UT/UW/UL edges from each @-mentioned user to the record's
  /// units. These are the edges the inter-record meta-graphs M1-M6 pass
  /// through (a mentioned user links another record's units to their own).
  bool include_mention_edges = true;
  /// Create pairwise WW edges among a record's keywords.
  bool include_word_pair_edges = true;
  /// Cap on keywords per record used for WW pairs (quadratic guard).
  int max_words_for_pairs = 30;
};

/// The vertex ids of one record's units in the activity graph.
struct RecordUnits {
  VertexId time_unit = kInvalidVertex;
  VertexId location_unit = kInvalidVertex;
  std::vector<VertexId> word_units;
  VertexId author = kInvalidVertex;          // user vertex in activity graph
  std::vector<VertexId> mentioned;           // user vertices
};

/// Output of graph construction: the two graph layers plus lookup tables.
struct BuiltGraphs {
  Heterograph activity;    // T/L/W/U vertices; TL/LW/WT/WW/UT/UW/UL edges
  Heterograph user_graph;  // U vertices; UU mention edges (Def. 2)

  /// Temporal hotspot id -> activity-graph vertex.
  std::vector<VertexId> temporal_vertices;
  /// Spatial hotspot id -> activity-graph vertex.
  std::vector<VertexId> spatial_vertices;
  /// Vocabulary word id -> activity-graph vertex (kInvalidVertex when the
  /// word never survived into the graph).
  std::vector<VertexId> word_vertices;
  /// User id -> user vertex in the activity graph.
  std::unordered_map<int64_t, VertexId> activity_users;
  /// User id -> vertex in the user interaction graph.
  std::unordered_map<int64_t, VertexId> interaction_users;
  /// Per-record unit ids, aligned with the corpus record order.
  std::vector<RecordUnits> record_units;
};

/// Constructs the activity graph and user interaction graph from a
/// tokenized corpus and its detected hotspots. Edge weights are
/// co-occurrence counts (activity graph) and mention counts (user graph).
/// Both graphs are returned finalized.
Result<BuiltGraphs> BuildGraphs(const TokenizedCorpus& corpus,
                                const Hotspots& hotspots,
                                const GraphBuildOptions& options = {});

}  // namespace actor

#endif  // ACTOR_GRAPH_GRAPH_BUILDER_H_
