#include "graph/proximity.h"

#include <cmath>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace actor {
namespace {

/// Gathers v's weighted adjacency across all edge types into a sparse map.
std::unordered_map<VertexId, double> AdjacencyRow(const Heterograph& graph,
                                                  VertexId v) {
  std::unordered_map<VertexId, double> row;
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    const EdgeType et = static_cast<EdgeType>(e);
    const auto neighbors = graph.Neighbors(et, v);
    const auto weights = graph.NeighborWeights(et, v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      row[neighbors[i]] += weights[i];
    }
  }
  return row;
}

}  // namespace

double FirstOrderProximity(const Heterograph& graph, VertexId u, VertexId v) {
  return graph.EdgeWeight(u, v);
}

double SecondOrderProximity(const Heterograph& graph, VertexId u, VertexId v) {
  ACTOR_CHECK(graph.finalized());
  if (u == v) return 1.0;
  const auto row_u = AdjacencyRow(graph, u);
  const auto row_v = AdjacencyRow(graph, v);
  if (row_u.empty() || row_v.empty()) return 0.0;
  double dot = 0.0, norm_u = 0.0, norm_v = 0.0;
  for (const auto& [n, w] : row_u) {
    norm_u += w * w;
    auto it = row_v.find(n);
    if (it != row_v.end()) dot += w * it->second;
  }
  for (const auto& [n, w] : row_v) norm_v += w * w;
  if (norm_u == 0.0 || norm_v == 0.0) return 0.0;
  return dot / (std::sqrt(norm_u) * std::sqrt(norm_v));
}

int ShortestPathHops(const Heterograph& graph, VertexId u, VertexId v) {
  ACTOR_CHECK(graph.finalized());
  if (u == v) return 0;
  std::vector<int> dist(graph.num_vertices(), -1);
  std::queue<VertexId> frontier;
  dist[u] = 0;
  frontier.push(u);
  while (!frontier.empty()) {
    const VertexId cur = frontier.front();
    frontier.pop();
    for (int e = 0; e < kNumEdgeTypes; ++e) {
      for (VertexId next :
           graph.Neighbors(static_cast<EdgeType>(e), cur)) {
        if (dist[next] >= 0) continue;
        dist[next] = dist[cur] + 1;
        if (next == v) return dist[next];
        frontier.push(next);
      }
    }
  }
  return -1;
}

}  // namespace actor
