#ifndef ACTOR_GRAPH_GRAPH_IO_H_
#define ACTOR_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/heterograph.h"
#include "util/result.h"

namespace actor {

/// Writes a finalized graph as a single TSV:
///   V <id> <type-letter> <name>
///   E <src> <dst> <weight>          (one row per undirected edge)
/// Graph construction is deterministic on reload: vertices keep their ids.
Status SaveHeterograph(const Heterograph& graph, const std::string& path);

/// Reads a graph written by SaveHeterograph and finalizes it.
Result<Heterograph> LoadHeterograph(const std::string& path);

}  // namespace actor

#endif  // ACTOR_GRAPH_GRAPH_IO_H_
