#include "graph/heterograph.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace actor {

VertexId Heterograph::AddVertex(VertexType type, std::string name) {
  const VertexId id = static_cast<VertexId>(types_.size());
  types_.push_back(type);
  names_.push_back(std::move(name));
  by_type_[static_cast<int>(type)].push_back(id);
  return id;
}

Status Heterograph::AccumulateEdge(VertexId u, VertexId v, double weight) {
  if (finalized_) {
    return Status::FailedPrecondition("graph is finalized");
  }
  if (u < 0 || v < 0 || u >= num_vertices() || v >= num_vertices()) {
    return Status::InvalidArgument(
        StrPrintf("vertex id out of range: %d, %d", u, v));
  }
  if (u == v) {
    return Status::InvalidArgument("self-loops are not allowed");
  }
  if (weight <= 0.0) {
    return Status::InvalidArgument("edge weight must be positive");
  }
  ACTOR_ASSIGN_OR_RETURN(EdgeType type,
                         EdgeTypeBetween(types_[u], types_[v]));
  accum_[static_cast<int>(type)][PackKey(u, v)] += weight;
  return Status::OK();
}

Status Heterograph::Finalize() {
  if (finalized_) {
    return Status::FailedPrecondition("graph already finalized");
  }
  const int32_t n = num_vertices();
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    auto& accum = accum_[e];
    DirectedEdges& de = edges_[e];
    de.src.reserve(accum.size() * 2);
    de.dst.reserve(accum.size() * 2);
    de.weight.reserve(accum.size() * 2);

    std::vector<int64_t> out_count(n, 0);
    for (const auto& [key, w] : accum) {
      const VertexId a = static_cast<VertexId>(key >> 32);
      const VertexId b = static_cast<VertexId>(key & 0xffffffffULL);
      de.src.push_back(a);
      de.dst.push_back(b);
      de.weight.push_back(w);
      de.src.push_back(b);
      de.dst.push_back(a);
      de.weight.push_back(w);
      ++out_count[a];
      ++out_count[b];
    }

    // CSR adjacency from the directed edge list.
    Csr& csr = adj_[e];
    csr.offsets.assign(n + 1, 0);
    for (int32_t v = 0; v < n; ++v) {
      csr.offsets[v + 1] = csr.offsets[v] + out_count[v];
    }
    const int64_t total = csr.offsets[n];
    csr.neighbors.resize(total);
    csr.weights.resize(total);
    std::vector<int64_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
    for (std::size_t i = 0; i < de.size(); ++i) {
      const VertexId s = de.src[i];
      const int64_t pos = cursor[s]++;
      csr.neighbors[pos] = de.dst[i];
      csr.weights[pos] = de.weight[i];
    }

    degree_[e].assign(n, 0.0);
    for (std::size_t i = 0; i < de.size(); ++i) {
      degree_[e][de.src[i]] += de.weight[i];
    }
    accum.clear();

    // Post-build consistency: every directed edge connects endpoint types
    // matching its edge type, the CSR cursors land exactly on the next
    // row's offset, and weighted degrees are finite and non-negative.
    if constexpr (kDebugChecksEnabled) {
      for (std::size_t i = 0; i < de.size(); ++i) {
        auto derived = EdgeTypeBetween(types_[de.src[i]], types_[de.dst[i]]);
        ACTOR_DCHECK(derived.ok() &&
                     *derived == static_cast<EdgeType>(e))
            << "edge (" << de.src[i] << ", " << de.dst[i]
            << ") stored under edge type " << e;
        ACTOR_DCHECK(de.weight[i] > 0.0) << "edge " << i << " weight";
      }
      for (int32_t v = 0; v < n; ++v) {
        ACTOR_DCHECK(cursor[v] == csr.offsets[v + 1])
            << "CSR row " << v << " under-filled for edge type " << e;
        ACTOR_DCHECK_FINITE(degree_[e][v]);
        ACTOR_DCHECK(degree_[e][v] >= 0.0) << "degree of vertex " << v;
      }
    }
  }
  finalized_ = true;
  return Status::OK();
}

const std::vector<VertexId>& Heterograph::VerticesOfType(
    VertexType type) const {
  return by_type_[static_cast<int>(type)];
}

const Heterograph::DirectedEdges& Heterograph::edges(EdgeType type) const {
  ACTOR_CHECK(finalized_) << "edges() requires Finalize()";
  return edges_[static_cast<int>(type)];
}

std::span<const VertexId> Heterograph::Neighbors(EdgeType type,
                                                 VertexId v) const {
  ACTOR_CHECK(finalized_) << "Neighbors() requires Finalize()";
  const Csr& csr = adj_[static_cast<int>(type)];
  const int64_t begin = csr.offsets[v];
  const int64_t end = csr.offsets[v + 1];
  return {csr.neighbors.data() + begin, static_cast<std::size_t>(end - begin)};
}

std::span<const double> Heterograph::NeighborWeights(EdgeType type,
                                                     VertexId v) const {
  ACTOR_CHECK(finalized_) << "NeighborWeights() requires Finalize()";
  const Csr& csr = adj_[static_cast<int>(type)];
  const int64_t begin = csr.offsets[v];
  const int64_t end = csr.offsets[v + 1];
  return {csr.weights.data() + begin, static_cast<std::size_t>(end - begin)};
}

double Heterograph::Degree(EdgeType type, VertexId v) const {
  ACTOR_CHECK(finalized_) << "Degree() requires Finalize()";
  ACTOR_DCHECK(v >= 0 && v < num_vertices()) << "vertex id " << v;
  return degree_[static_cast<int>(type)][v];
}

double Heterograph::EdgeWeight(VertexId u, VertexId v) const {
  ACTOR_CHECK(finalized_) << "EdgeWeight() requires Finalize()";
  if (u == v) return 0.0;
  auto type_result = EdgeTypeBetween(types_[u], types_[v]);
  if (!type_result.ok()) return 0.0;
  const auto neighbors = Neighbors(*type_result, u);
  const auto weights = NeighborWeights(*type_result, u);
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    if (neighbors[i] == v) return weights[i];
  }
  return 0.0;
}

int64_t Heterograph::num_directed_edges() const {
  ACTOR_CHECK(finalized_) << "num_directed_edges() requires Finalize()";
  int64_t total = 0;
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    total += static_cast<int64_t>(edges_[e].size());
  }
  return total;
}

}  // namespace actor
