#include "graph/graph_builder.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace actor {
namespace {

/// Adds weight to {u, v} unless they coincide or either is invalid.
Status AccumulateIfDistinct(Heterograph* g, VertexId u, VertexId v,
                            double w = 1.0) {
  if (u == kInvalidVertex || v == kInvalidVertex || u == v) {
    return Status::OK();
  }
  return g->AccumulateEdge(u, v, w);
}

}  // namespace

Result<BuiltGraphs> BuildGraphs(const TokenizedCorpus& corpus,
                                const Hotspots& hotspots,
                                const GraphBuildOptions& options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("cannot build graphs from empty corpus");
  }
  if (hotspots.spatial.size() == 0 || hotspots.temporal.size() == 0) {
    return Status::InvalidArgument(
        "hotspot detection produced no spatial or temporal hotspots");
  }
  BuiltGraphs out;

  // --- Vertices ----------------------------------------------------------
  out.temporal_vertices.reserve(hotspots.temporal.size());
  for (std::size_t i = 0; i < hotspots.temporal.size(); ++i) {
    const double h = hotspots.temporal.hour(static_cast<int32_t>(i));
    const int hh = static_cast<int>(h);
    const int mm = static_cast<int>((h - hh) * 60.0);
    out.temporal_vertices.push_back(out.activity.AddVertex(
        VertexType::kTime, StrPrintf("T%zu(%02d:%02d)", i, hh, mm)));
  }
  out.spatial_vertices.reserve(hotspots.spatial.size());
  for (std::size_t i = 0; i < hotspots.spatial.size(); ++i) {
    const GeoPoint& c = hotspots.spatial.center(static_cast<int32_t>(i));
    out.spatial_vertices.push_back(out.activity.AddVertex(
        VertexType::kLocation, StrPrintf("L%zu(%.2f,%.2f)", i, c.x, c.y)));
  }
  out.word_vertices.assign(corpus.vocab().size(), kInvalidVertex);
  for (int32_t w = 0; w < corpus.vocab().size(); ++w) {
    out.word_vertices[w] =
        out.activity.AddVertex(VertexType::kWord, corpus.vocab().word(w));
  }

  auto activity_user = [&](int64_t user_id) -> VertexId {
    auto it = out.activity_users.find(user_id);
    if (it != out.activity_users.end()) return it->second;
    const VertexId v = out.activity.AddVertex(
        VertexType::kUser, StrPrintf("user%lld", static_cast<long long>(user_id)));
    out.activity_users.emplace(user_id, v);
    return v;
  };
  auto interaction_user = [&](int64_t user_id) -> VertexId {
    auto it = out.interaction_users.find(user_id);
    if (it != out.interaction_users.end()) return it->second;
    const VertexId v = out.user_graph.AddVertex(
        VertexType::kUser, StrPrintf("user%lld", static_cast<long long>(user_id)));
    out.interaction_users.emplace(user_id, v);
    return v;
  };

  // --- Edges --------------------------------------------------------------
  out.record_units.reserve(corpus.size());
  for (const auto& rec : corpus.records()) {
    RecordUnits units;
    units.time_unit =
        out.temporal_vertices[hotspots.temporal.Assign(rec.timestamp)];
    units.location_unit =
        out.spatial_vertices[hotspots.spatial.Assign(rec.location)];
    for (int32_t w : rec.word_ids) {
      units.word_units.push_back(out.word_vertices[w]);
    }
    units.author = activity_user(rec.user_id);
    for (int64_t m : rec.mentioned_user_ids) {
      units.mentioned.push_back(activity_user(m));
    }

    // Intra-record co-occurrence edges: TL, LW, WT (Def. 1).
    ACTOR_RETURN_NOT_OK(AccumulateIfDistinct(&out.activity, units.time_unit,
                                             units.location_unit));
    for (VertexId w : units.word_units) {
      ACTOR_RETURN_NOT_OK(
          AccumulateIfDistinct(&out.activity, units.location_unit, w));
      ACTOR_RETURN_NOT_OK(
          AccumulateIfDistinct(&out.activity, w, units.time_unit));
    }
    // WW pairs.
    if (options.include_word_pair_edges) {
      const std::size_t n = std::min<std::size_t>(
          units.word_units.size(),
          static_cast<std::size_t>(options.max_words_for_pairs));
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          ACTOR_RETURN_NOT_OK(AccumulateIfDistinct(
              &out.activity, units.word_units[i], units.word_units[j]));
        }
      }
    }

    // User -> unit edges (the substrate of M_inter = {UT, UW, UL}).
    auto add_user_edges = [&](VertexId user_vertex) -> Status {
      ACTOR_RETURN_NOT_OK(
          AccumulateIfDistinct(&out.activity, user_vertex, units.time_unit));
      ACTOR_RETURN_NOT_OK(AccumulateIfDistinct(&out.activity, user_vertex,
                                               units.location_unit));
      for (VertexId w : units.word_units) {
        ACTOR_RETURN_NOT_OK(AccumulateIfDistinct(&out.activity, user_vertex, w));
      }
      return Status::OK();
    };
    if (options.include_author_edges) {
      ACTOR_RETURN_NOT_OK(add_user_edges(units.author));
    }
    if (options.include_mention_edges) {
      for (VertexId m : units.mentioned) {
        ACTOR_RETURN_NOT_OK(add_user_edges(m));
      }
    }

    // User interaction graph: author mentioned each user once per record
    // ("the edge weight is set to be the mentioned counts", Def. 2).
    const VertexId author_iv = interaction_user(rec.user_id);
    for (int64_t m : rec.mentioned_user_ids) {
      const VertexId target_iv = interaction_user(m);
      ACTOR_RETURN_NOT_OK(
          AccumulateIfDistinct(&out.user_graph, author_iv, target_iv));
    }

    out.record_units.push_back(std::move(units));
  }

  ACTOR_RETURN_NOT_OK(out.activity.Finalize());
  ACTOR_RETURN_NOT_OK(out.user_graph.Finalize());

  // Every record unit must be a live vertex of the expected type in the
  // finalized activity graph — the record-level trainer indexes embedding
  // rows with these ids without further checks.
  if constexpr (kDebugChecksEnabled) {
    const int32_t nv = out.activity.num_vertices();
    for (const RecordUnits& units : out.record_units) {
      ACTOR_DCHECK(units.time_unit >= 0 && units.time_unit < nv);
      ACTOR_DCHECK(out.activity.vertex_type(units.time_unit) ==
                   VertexType::kTime);
      ACTOR_DCHECK(units.location_unit >= 0 && units.location_unit < nv);
      ACTOR_DCHECK(out.activity.vertex_type(units.location_unit) ==
                   VertexType::kLocation);
      for (VertexId w : units.word_units) {
        ACTOR_DCHECK(w >= 0 && w < nv);
        ACTOR_DCHECK(out.activity.vertex_type(w) == VertexType::kWord);
      }
      ACTOR_DCHECK(units.author >= 0 && units.author < nv);
      ACTOR_DCHECK(out.activity.vertex_type(units.author) ==
                   VertexType::kUser);
    }
  }
  return out;
}

}  // namespace actor
