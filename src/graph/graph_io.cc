#include "graph/graph_io.h"

#include <fstream>
#include <unordered_set>

#include "util/string_util.h"

namespace actor {
namespace {

Result<VertexType> ParseVertexType(const std::string& s) {
  if (s == "T") return VertexType::kTime;
  if (s == "L") return VertexType::kLocation;
  if (s == "W") return VertexType::kWord;
  if (s == "U") return VertexType::kUser;
  return Status::InvalidArgument("unknown vertex type: " + s);
}

}  // namespace

Status SaveHeterograph(const Heterograph& graph, const std::string& path) {
  if (!graph.finalized()) {
    return Status::FailedPrecondition("graph must be finalized");
  }
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.precision(17);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    out << "V\t" << v << '\t' << VertexTypeName(graph.vertex_type(v)) << '\t'
        << graph.vertex_name(v) << '\n';
  }
  // Each undirected edge appears twice in the directed arrays; emit once
  // (src < dst).
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    const auto& edges = graph.edges(static_cast<EdgeType>(e));
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edges.src[i] < edges.dst[i]) {
        out << "E\t" << edges.src[i] << '\t' << edges.dst[i] << '\t'
            << edges.weight[i] << '\n';
      }
    }
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Heterograph> LoadHeterograph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  Heterograph graph;
  std::string line;
  std::size_t line_no = 0;
  VertexId next_vertex = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    auto malformed = [&](const char* what) {
      return Status::InvalidArgument(
          StrPrintf("%s:%zu: %s", path.c_str(), line_no, what));
    };
    if (fields[0] == "V") {
      if (fields.size() != 4) return malformed("V row needs 4 fields");
      const VertexId id =
          static_cast<VertexId>(std::strtol(fields[1].c_str(), nullptr, 10));
      if (id != next_vertex) {
        return malformed("vertex ids must be dense and in order");
      }
      ACTOR_ASSIGN_OR_RETURN(VertexType type, ParseVertexType(fields[2]));
      graph.AddVertex(type, fields[3]);
      ++next_vertex;
    } else if (fields[0] == "E") {
      if (fields.size() != 4) return malformed("E row needs 4 fields");
      const VertexId src =
          static_cast<VertexId>(std::strtol(fields[1].c_str(), nullptr, 10));
      const VertexId dst =
          static_cast<VertexId>(std::strtol(fields[2].c_str(), nullptr, 10));
      const double weight = std::strtod(fields[3].c_str(), nullptr);
      ACTOR_RETURN_NOT_OK(graph.AccumulateEdge(src, dst, weight));
    } else {
      return malformed("row must start with V or E");
    }
  }
  ACTOR_RETURN_NOT_OK(graph.Finalize());
  return graph;
}

}  // namespace actor
