#ifndef ACTOR_GRAPH_RANDOM_WALK_H_
#define ACTOR_GRAPH_RANDOM_WALK_H_

#include <unordered_map>
#include <vector>

#include "graph/alias_table.h"
#include "graph/heterograph.h"
#include "util/result.h"
#include "util/rng.h"

namespace actor {

/// Options for meta-path-guided random walks (metapath2vec [25]).
struct MetaPathWalkOptions {
  int walks_per_start = 5;
  int walk_length = 20;
  uint64_t seed = 7;
};

/// Generates meta-path-constrained weighted random walks on a finalized
/// Heterograph. A meta path is a cyclic sequence of vertex types, e.g.
/// L-W-T-W (the best path reported in paper §6.2.3). Walks start from every
/// vertex of the first type; at each step the walker moves to a weighted
/// random neighbor of the next type in the (cyclic) pattern, stopping early
/// if no such neighbor exists.
class MetaPathWalker {
 public:
  /// The graph must be finalized and outlive the walker.
  MetaPathWalker(const Heterograph* graph, std::vector<VertexType> meta_path);

  /// Returns the generated walks (each a vertex sequence; length >= 1).
  /// Returns InvalidArgument if the meta path is shorter than 2 or uses a
  /// vertex-type transition with no edge type.
  Result<std::vector<std::vector<VertexId>>> GenerateWalks(
      const MetaPathWalkOptions& options);

 private:
  /// Weighted neighbor pick through edge type `e`, or kInvalidVertex.
  VertexId Step(EdgeType e, VertexId v, Rng& rng);

  const Heterograph* graph_;
  std::vector<VertexType> meta_path_;
  /// Lazily-built per (edge type, vertex) alias tables over neighbor
  /// weights.
  std::unordered_map<uint64_t, AliasTable> row_tables_;
};

}  // namespace actor

#endif  // ACTOR_GRAPH_RANDOM_WALK_H_
