#include "baselines/crossmap.h"

#include <algorithm>

#include "core/meta_graph.h"
#include "embedding/negative_sampler.h"
#include "embedding/sgd.h"

namespace actor {

Result<LineEmbedding> TrainCrossMap(const BuiltGraphs& graphs,
                                    const CrossMapOptions& options) {
  const Heterograph& g = graphs.activity;
  if (!g.finalized()) {
    return Status::FailedPrecondition("activity graph must be finalized");
  }
  if (options.dim <= 0 || options.epochs <= 0 || options.samples_per_edge <= 0) {
    return Status::InvalidArgument("dim/epochs/samples_per_edge must be > 0");
  }

  LineEmbedding model;
  model.center = EmbeddingMatrix(g.num_vertices(), options.dim);
  model.context = EmbeddingMatrix(g.num_vertices(), options.dim);
  Rng rng(options.seed);
  model.center.InitUniform(rng);
  model.context.InitZero();

  ACTOR_ASSIGN_OR_RETURN(TypedNegativeSampler noise,
                         TypedNegativeSampler::Create(g));
  TrainOptions train_opts;
  train_opts.dim = options.dim;
  train_opts.negatives = options.negatives;
  train_opts.num_threads = options.num_threads;
  train_opts.pool = options.pool;
  train_opts.seed = options.seed + 1;
  EdgeSamplingTrainer trainer(&g, &model.center, &model.context, &noise,
                              train_opts);
  ACTOR_RETURN_NOT_OK(trainer.Prepare());

  std::vector<EdgeType> types = IntraEdgeTypes();
  if (options.include_user_edges) {
    for (EdgeType e : InterEdgeTypes()) types.push_back(e);
  }
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const float frac =
        static_cast<float>(epoch) / static_cast<float>(options.epochs);
    const float lr = std::max(options.initial_lr * (1.0f - frac),
                              options.initial_lr * 1e-3f);
    for (EdgeType e : types) {
      const int64_t edges = static_cast<int64_t>(g.edges(e).size());
      const int64_t m =
          (edges * options.samples_per_edge + options.epochs - 1) /
          options.epochs;
      ACTOR_RETURN_NOT_OK(trainer.TrainEdgeType(e, m, lr));
    }
  }
  return model;
}

}  // namespace actor
