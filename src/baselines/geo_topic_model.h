#ifndef ACTOR_BASELINES_GEO_TOPIC_MODEL_H_
#define ACTOR_BASELINES_GEO_TOPIC_MODEL_H_

#include <cstdint>
#include <vector>

#include "data/corpus.h"
#include "data/record.h"
#include "util/result.h"

namespace actor {

/// Options for the geographical topic models used as baselines.
///
/// With neighbor_smoothing = false this is LGTA [17]: R latent regions,
/// each with an isotropic Gaussian over locations and a multinomial over
/// topics; topics share word multinomials; EM training.
///
/// With neighbor_smoothing = true it approximates MGTM [16]: the
/// multi-Dirichlet process coupling of nearby regions is realized by
/// smoothing each region's topic distribution toward its spatial
/// neighbors' after every M-step (finite-truncation substitute; see
/// DESIGN.md §2).
struct GeoTopicOptions {
  int num_regions = 50;
  int num_topics = 20;
  int em_iterations = 15;
  /// Dirichlet smoothing for region-topic distributions θ.
  double alpha = 1.0;
  /// Dirichlet smoothing for topic-word distributions φ.
  double beta = 0.01;
  /// Variance floor for region Gaussians (km²).
  double min_sigma2 = 1e-2;
  uint64_t seed = 5;

  bool neighbor_smoothing = false;
  int num_neighbors = 3;
  double smoothing_lambda = 0.5;
};

/// LGTA preset.
GeoTopicOptions LgtaOptions();
/// MGTM preset (neighbor-coupled regions).
GeoTopicOptions MgtmOptions();

/// A trained geographical topic model. Neither LGTA nor MGTM models the
/// time modality (paper Table 2 reports "/" for their time task).
class GeoTopicModel {
 public:
  /// Runs EM on the training corpus. Returns InvalidArgument for empty
  /// corpora or non-positive sizes.
  static Result<GeoTopicModel> Train(const TokenizedCorpus& corpus,
                                     const GeoTopicOptions& options);

  /// Joint log-score log p(l, W) = logsumexp_{r,z} [log π_r + log N(l; r)
  /// + log θ_rz + Σ_w log φ_z(w)]. Used (with one side varied) for both
  /// text-given-location and location-given-text ranking.
  double ScoreJoint(const GeoPoint& location,
                    const std::vector<int32_t>& words) const;

  int num_regions() const { return options_.num_regions; }
  int num_topics() const { return options_.num_topics; }

  /// Per-EM-iteration data log-likelihood (monotone non-decreasing up to
  /// smoothing; exposed for tests).
  const std::vector<double>& log_likelihood_trace() const {
    return ll_trace_;
  }

  const GeoPoint& region_mean(int r) const { return region_mean_[r]; }
  double region_sigma2(int r) const { return region_sigma2_[r]; }
  /// θ_{r,z}.
  double region_topic(int r, int z) const {
    return theta_[static_cast<std::size_t>(r) * options_.num_topics + z];
  }
  /// φ_z(w).
  double topic_word(int z, int32_t w) const {
    return phi_[static_cast<std::size_t>(z) * vocab_size_ + w];
  }

 private:
  GeoTopicModel() = default;

  GeoTopicOptions options_;
  int32_t vocab_size_ = 0;
  std::vector<GeoPoint> region_mean_;
  std::vector<double> region_sigma2_;
  std::vector<double> region_prior_;      // π_r
  std::vector<double> theta_;             // R x Z
  std::vector<double> phi_;               // Z x V
  std::vector<double> ll_trace_;
};

}  // namespace actor

#endif  // ACTOR_BASELINES_GEO_TOPIC_MODEL_H_
