#ifndef ACTOR_BASELINES_CROSSMAP_H_
#define ACTOR_BASELINES_CROSSMAP_H_

#include "embedding/line.h"
#include "graph/graph_builder.h"
#include "util/result.h"

namespace actor {

/// Options for the CrossMap [7] baseline: per-edge-type cross-modal
/// embedding of the activity graph, modelling only intra-record
/// co-occurrence. Equivalent to ACTOR with the hierarchical (inter-record)
/// structure and the bag-of-words model both disabled — the paper §5.4
/// notes CrossMap is the single-layer special case of the framework.
struct CrossMapOptions {
  int32_t dim = 32;
  int negatives = 1;
  float initial_lr = 0.02f;
  int epochs = 10;
  int samples_per_edge = 20;
  int num_threads = 1;
  uint64_t seed = 29;
  /// CrossMap(U): also trains the auxiliary user edge types {UT, UW, UL}
  /// (paper §6.1.2).
  bool include_user_edges = false;
  /// Externally-owned persistent worker pool; when null and
  /// num_threads > 1 the underlying trainer owns one for the whole call.
  ThreadPool* pool = nullptr;
};

/// Trains CrossMap on the built activity graph.
Result<LineEmbedding> TrainCrossMap(const BuiltGraphs& graphs,
                                    const CrossMapOptions& options);

}  // namespace actor

#endif  // ACTOR_BASELINES_CROSSMAP_H_
