#ifndef ACTOR_BASELINES_METAPATH2VEC_H_
#define ACTOR_BASELINES_METAPATH2VEC_H_

#include <vector>

#include "embedding/line.h"
#include "embedding/skipgram.h"
#include "graph/heterograph.h"
#include "graph/random_walk.h"
#include "util/result.h"

namespace actor {

/// Options for the metapath2vec [25] baseline: meta-path-guided random
/// walks over the heterogeneous activity graph followed by (heterogeneous)
/// skip-gram. The default meta path is L-W-T-W, the best-performing path
/// in the paper's experiments (§6.2.3).
struct Metapath2vecOptions {
  int32_t dim = 32;
  std::vector<VertexType> meta_path = {VertexType::kLocation,
                                       VertexType::kWord, VertexType::kTime,
                                       VertexType::kWord};
  MetaPathWalkOptions walk;
  SkipGramOptions skipgram;
};

/// Trains metapath2vec on a finalized activity graph.
Result<LineEmbedding> TrainMetapath2vec(const Heterograph& graph,
                                        const Metapath2vecOptions& options);

}  // namespace actor

#endif  // ACTOR_BASELINES_METAPATH2VEC_H_
