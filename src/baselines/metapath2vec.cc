#include "baselines/metapath2vec.h"

namespace actor {

Result<LineEmbedding> TrainMetapath2vec(const Heterograph& graph,
                                        const Metapath2vecOptions& options) {
  if (!graph.finalized()) {
    return Status::FailedPrecondition("graph must be finalized");
  }
  MetaPathWalker walker(&graph, options.meta_path);
  ACTOR_ASSIGN_OR_RETURN(auto walks, walker.GenerateWalks(options.walk));
  if (walks.empty()) {
    return Status::InvalidArgument(
        "meta-path walks are empty; the graph may lack the required edge "
        "types");
  }
  SkipGramOptions sg = options.skipgram;
  sg.dim = options.dim;
  return TrainSkipGramOnWalks(graph, walks, sg);
}

}  // namespace actor
