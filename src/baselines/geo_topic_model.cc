#include "baselines/geo_topic_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "util/logging.h"
#include "util/rng.h"

namespace actor {
namespace {

double LogSumExp(const std::vector<double>& v) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : v) m = std::max(m, x);
  if (!std::isfinite(m)) return m;
  double acc = 0.0;
  for (double x : v) acc += std::exp(x - m);
  return m + std::log(acc);
}

double LogGaussian2d(const GeoPoint& x, const GeoPoint& mu, double sigma2) {
  const double dx = x.x - mu.x;
  const double dy = x.y - mu.y;
  return -std::log(2.0 * std::numbers::pi * sigma2) -
         (dx * dx + dy * dy) / (2.0 * sigma2);
}

}  // namespace

GeoTopicOptions LgtaOptions() {
  GeoTopicOptions o;
  o.neighbor_smoothing = false;
  return o;
}

GeoTopicOptions MgtmOptions() {
  GeoTopicOptions o;
  o.neighbor_smoothing = true;
  o.num_neighbors = 3;
  o.smoothing_lambda = 0.5;
  return o;
}

Result<GeoTopicModel> GeoTopicModel::Train(const TokenizedCorpus& corpus,
                                           const GeoTopicOptions& options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("cannot train on empty corpus");
  }
  if (options.num_regions <= 0 || options.num_topics <= 0 ||
      options.em_iterations <= 0) {
    return Status::InvalidArgument("regions/topics/iterations must be > 0");
  }
  if (options.alpha <= 0.0 || options.beta <= 0.0 ||
      options.min_sigma2 <= 0.0) {
    return Status::InvalidArgument("smoothing parameters must be positive");
  }

  GeoTopicModel model;
  model.options_ = options;
  model.vocab_size_ = corpus.vocab().size();
  const int R = options.num_regions;
  const int Z = options.num_topics;
  const int32_t V = model.vocab_size_;
  const std::size_t N = corpus.size();

  Rng rng(options.seed);

  // Initialization: region means at random record locations, shared wide
  // variance; θ and φ uniform with multiplicative noise.
  model.region_mean_.resize(R);
  for (int r = 0; r < R; ++r) {
    model.region_mean_[r] = corpus.record(rng.Uniform(N)).location;
  }
  model.region_sigma2_.assign(R, 4.0);
  model.region_prior_.assign(R, 1.0 / R);
  model.theta_.resize(static_cast<std::size_t>(R) * Z);
  for (auto& t : model.theta_) t = (1.0 + 0.1 * rng.UniformDouble()) / Z;
  model.phi_.resize(static_cast<std::size_t>(Z) * V);
  for (auto& p : model.phi_) p = (1.0 + 0.1 * rng.UniformDouble()) / V;
  // Normalize rows.
  auto normalize_rows = [](std::vector<double>& m, int rows, int cols) {
    for (int r = 0; r < rows; ++r) {
      double s = 0.0;
      for (int c = 0; c < cols; ++c) s += m[static_cast<std::size_t>(r) * cols + c];
      for (int c = 0; c < cols; ++c) m[static_cast<std::size_t>(r) * cols + c] /= s;
    }
  };
  normalize_rows(model.theta_, R, Z);
  normalize_rows(model.phi_, Z, V);

  std::vector<double> log_theta(static_cast<std::size_t>(R) * Z);
  std::vector<double> log_phi(static_cast<std::size_t>(Z) * V);
  std::vector<double> doc_topic_ll(Z);
  std::vector<double> doc_region_ll(R);
  std::vector<double> joint(static_cast<std::size_t>(R) * Z);

  for (int iter = 0; iter < options.em_iterations; ++iter) {
    for (std::size_t i = 0; i < model.theta_.size(); ++i) {
      log_theta[i] = std::log(model.theta_[i]);
    }
    for (std::size_t i = 0; i < model.phi_.size(); ++i) {
      log_phi[i] = std::log(model.phi_[i]);
    }

    // Sufficient statistics.
    std::vector<double> n_r(R, 0.0);
    std::vector<double> sum_x(R, 0.0), sum_y(R, 0.0), sum_d2(R, 0.0);
    std::vector<double> n_rz(static_cast<std::size_t>(R) * Z, 0.0);
    std::vector<double> n_zw(static_cast<std::size_t>(Z) * V, 0.0);
    std::vector<double> n_z(Z, 0.0);
    double total_ll = 0.0;

    for (std::size_t i = 0; i < N; ++i) {
      const TokenizedRecord& rec = corpus.record(i);
      // Per-topic text log-likelihood.
      for (int z = 0; z < Z; ++z) {
        double ll = 0.0;
        for (int32_t w : rec.word_ids) {
          ll += log_phi[static_cast<std::size_t>(z) * V + w];
        }
        doc_topic_ll[z] = ll;
      }
      // Per-region spatial log-likelihood.
      for (int r = 0; r < R; ++r) {
        doc_region_ll[r] = std::log(model.region_prior_[r]) +
                           LogGaussian2d(rec.location, model.region_mean_[r],
                                         model.region_sigma2_[r]);
      }
      // Joint responsibilities.
      for (int r = 0; r < R; ++r) {
        for (int z = 0; z < Z; ++z) {
          joint[static_cast<std::size_t>(r) * Z + z] =
              doc_region_ll[r] + log_theta[static_cast<std::size_t>(r) * Z + z] +
              doc_topic_ll[z];
        }
      }
      const double norm = LogSumExp(joint);
      total_ll += norm;
      for (int r = 0; r < R; ++r) {
        double gamma_r = 0.0;
        for (int z = 0; z < Z; ++z) {
          const double g =
              std::exp(joint[static_cast<std::size_t>(r) * Z + z] - norm);
          gamma_r += g;
          n_rz[static_cast<std::size_t>(r) * Z + z] += g;
          n_z[z] += g;
        }
        n_r[r] += gamma_r;
        sum_x[r] += gamma_r * rec.location.x;
        sum_y[r] += gamma_r * rec.location.y;
      }
      // Topic responsibilities for word counts.
      for (int z = 0; z < Z; ++z) {
        double gamma_z = 0.0;
        for (int r = 0; r < R; ++r) {
          gamma_z += std::exp(joint[static_cast<std::size_t>(r) * Z + z] - norm);
        }
        for (int32_t w : rec.word_ids) {
          n_zw[static_cast<std::size_t>(z) * V + w] += gamma_z;
        }
      }
    }
    model.ll_trace_.push_back(total_ll);

    // M-step: region parameters.
    double n_total = 0.0;
    for (int r = 0; r < R; ++r) n_total += n_r[r];
    for (int r = 0; r < R; ++r) {
      model.region_prior_[r] = (n_r[r] + 1e-6) / (n_total + 1e-6 * R);
      if (n_r[r] > 1e-9) {
        model.region_mean_[r].x = sum_x[r] / n_r[r];
        model.region_mean_[r].y = sum_y[r] / n_r[r];
      }
    }
    // Second pass for variances (needs updated means).
    std::vector<double> var_acc(R, 0.0);
    std::vector<double> var_n(R, 0.0);
    for (std::size_t i = 0; i < N; ++i) {
      const TokenizedRecord& rec = corpus.record(i);
      for (int r = 0; r < R; ++r) {
        doc_region_ll[r] = std::log(model.region_prior_[r]) +
                           LogGaussian2d(rec.location, model.region_mean_[r],
                                         model.region_sigma2_[r]);
      }
      const double norm = LogSumExp(doc_region_ll);
      for (int r = 0; r < R; ++r) {
        const double g = std::exp(doc_region_ll[r] - norm);
        const double dx = rec.location.x - model.region_mean_[r].x;
        const double dy = rec.location.y - model.region_mean_[r].y;
        var_acc[r] += g * (dx * dx + dy * dy);
        var_n[r] += g;
      }
    }
    for (int r = 0; r < R; ++r) {
      if (var_n[r] > 1e-9) {
        model.region_sigma2_[r] =
            std::max(options.min_sigma2, var_acc[r] / (2.0 * var_n[r]));
      }
    }

    // θ with Dirichlet smoothing.
    for (int r = 0; r < R; ++r) {
      double s = 0.0;
      for (int z = 0; z < Z; ++z) {
        s += n_rz[static_cast<std::size_t>(r) * Z + z] + options.alpha;
      }
      for (int z = 0; z < Z; ++z) {
        model.theta_[static_cast<std::size_t>(r) * Z + z] =
            (n_rz[static_cast<std::size_t>(r) * Z + z] + options.alpha) / s;
      }
    }
    // MGTM-style coupling: smooth θ_r toward its nearest regions.
    if (options.neighbor_smoothing && R > 1) {
      std::vector<double> smoothed(model.theta_.size(), 0.0);
      const int k = std::min(options.num_neighbors, R - 1);
      for (int r = 0; r < R; ++r) {
        // Find the k nearest region means.
        std::vector<std::pair<double, int>> dist;
        dist.reserve(R - 1);
        for (int r2 = 0; r2 < R; ++r2) {
          if (r2 == r) continue;
          dist.emplace_back(Distance(model.region_mean_[r],
                                     model.region_mean_[r2]), r2);
        }
        std::partial_sort(dist.begin(), dist.begin() + k, dist.end());
        for (int z = 0; z < Z; ++z) {
          double nb = 0.0;
          for (int j = 0; j < k; ++j) {
            nb += model.theta_[static_cast<std::size_t>(dist[j].second) * Z + z];
          }
          nb /= k;
          smoothed[static_cast<std::size_t>(r) * Z + z] =
              (1.0 - options.smoothing_lambda) *
                  model.theta_[static_cast<std::size_t>(r) * Z + z] +
              options.smoothing_lambda * nb;
        }
      }
      model.theta_.swap(smoothed);
    }

    // φ with Dirichlet smoothing.
    for (int z = 0; z < Z; ++z) {
      const double denom = n_z[z] * 1.0 + options.beta * V;
      double s = 0.0;
      for (int32_t w = 0; w < V; ++w) {
        const double val =
            n_zw[static_cast<std::size_t>(z) * V + w] + options.beta;
        model.phi_[static_cast<std::size_t>(z) * V + w] = val;
        s += val;
      }
      (void)denom;
      for (int32_t w = 0; w < V; ++w) {
        model.phi_[static_cast<std::size_t>(z) * V + w] /= s;
      }
    }
  }
  return model;
}

double GeoTopicModel::ScoreJoint(const GeoPoint& location,
                                 const std::vector<int32_t>& words) const {
  const int R = options_.num_regions;
  const int Z = options_.num_topics;
  std::vector<double> doc_topic_ll(Z, 0.0);
  for (int z = 0; z < Z; ++z) {
    double ll = 0.0;
    for (int32_t w : words) {
      if (w >= 0 && w < vocab_size_) {
        ll += std::log(phi_[static_cast<std::size_t>(z) * vocab_size_ + w]);
      }
    }
    doc_topic_ll[z] = ll;
  }
  std::vector<double> joint(static_cast<std::size_t>(R) * Z);
  for (int r = 0; r < R; ++r) {
    const double rll = std::log(region_prior_[r]) +
                       LogGaussian2d(location, region_mean_[r],
                                     region_sigma2_[r]);
    for (int z = 0; z < Z; ++z) {
      joint[static_cast<std::size_t>(r) * Z + z] =
          rll + std::log(theta_[static_cast<std::size_t>(r) * Z + z]) +
          doc_topic_ll[z];
    }
  }
  return LogSumExp(joint);
}

}  // namespace actor
