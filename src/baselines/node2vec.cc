#include "baselines/node2vec.h"

namespace actor {

Result<LineEmbedding> TrainNode2vec(const Heterograph& graph,
                                    const Node2vecOptions& options) {
  ACTOR_ASSIGN_OR_RETURN(auto walks,
                         GenerateNode2vecWalks(graph, options.walk));
  SkipGramOptions sg = options.skipgram;
  sg.dim = options.dim;
  // Homogeneous method: negatives pooled over all vertex types.
  sg.typed_negatives = false;
  return TrainSkipGramOnWalks(graph, walks, sg);
}

Result<LineEmbedding> TrainDeepWalk(const Heterograph& graph,
                                    Node2vecOptions options) {
  options.walk.p = 1.0;
  options.walk.q = 1.0;
  return TrainNode2vec(graph, options);
}

}  // namespace actor
