#ifndef ACTOR_BASELINES_NODE2VEC_H_
#define ACTOR_BASELINES_NODE2VEC_H_

#include "embedding/line.h"
#include "embedding/skipgram.h"
#include "graph/heterograph.h"
#include "graph/node2vec_walk.h"
#include "util/result.h"

namespace actor {

/// Options for the node2vec [23] / DeepWalk [22] extra baselines: biased
/// (or uniform) homogeneous random walks plus skip-gram. The paper
/// discusses both in related work (§2.2) as homogeneous methods that do
/// not fit the typed activity graph; they are provided here to make that
/// comparison runnable (bench/extra_baselines).
struct Node2vecOptions {
  int32_t dim = 32;
  Node2vecWalkOptions walk;
  SkipGramOptions skipgram;
};

/// node2vec with the given p/q (set in options.walk).
Result<LineEmbedding> TrainNode2vec(const Heterograph& graph,
                                    const Node2vecOptions& options);

/// DeepWalk = node2vec with p = q = 1 and uniform skip-gram negatives.
Result<LineEmbedding> TrainDeepWalk(const Heterograph& graph,
                                    Node2vecOptions options);

}  // namespace actor

#endif  // ACTOR_BASELINES_NODE2VEC_H_
