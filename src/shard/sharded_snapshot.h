#ifndef ACTOR_SHARD_SHARDED_SNAPSHOT_H_
#define ACTOR_SHARD_SHARDED_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "data/record.h"
#include "graph/types.h"
#include "serve/model_snapshot.h"
#include "shard/vertex_partitioner.h"
#include "util/logging.h"

namespace actor {

/// Frozen copy of the ShardMap plus the *global* modality resolvers, taken
/// at publish time. The per-shard ModelSnapshots carry only their local
/// rows and local unit names; everything that needs a global view — which
/// shard owns a vertex, which unit a location/hour/word resolves to — lives
/// here. Shared by shared_ptr across delta publishes while the unit set is
/// unchanged, the same trick ModelSnapshot plays with its CatalogState.
///
/// The resolvers mirror ModelSnapshot's online path bit for bit
/// (nearest-center linear scan, circular-hour scan, word-unit map), so a
/// sharded engine and a flat engine seeded from the same model state pick
/// the same seed unit.
struct ShardMapSnapshot {
  int num_shards = 1;
  std::vector<int32_t> owner;                   // global id -> shard
  std::vector<int32_t> local;                   // global id -> local row
  std::vector<std::vector<VertexId>> globals;   // shard -> local -> global

  // Global modality resolvers (the online catalogue's resolver half).
  std::vector<GeoPoint> spatial_centers;
  std::vector<VertexId> spatial_units;
  std::vector<double> temporal_hours;
  std::vector<VertexId> temporal_units;
  std::unordered_map<int32_t, VertexId> word_units;

  int32_t num_vertices() const { return static_cast<int32_t>(owner.size()); }

  VertexId SpatialVertex(const GeoPoint& location) const;
  VertexId TemporalVertexAt(double timestamp) const;
  VertexId TemporalVertexAtHour(double hour) const;
  VertexId WordVertex(int32_t word_id) const;
};

/// A composite of per-shard chunk-COW ModelSnapshots plus the frozen
/// ShardMapSnapshot, all stamped with one model version. Immutable after
/// Make(); queries hold the composite by shared_ptr and see one consistent
/// version across every shard — the per-shard snapshots were all taken at
/// the same batch barrier, so unlike independent per-shard stores there is
/// no torn read across shards.
class ShardedModelSnapshot {
 public:
  static std::shared_ptr<const ShardedModelSnapshot> Make(
      std::vector<std::shared_ptr<const ModelSnapshot>> shards,
      std::shared_ptr<const ShardMapSnapshot> map, uint64_t version);

  uint64_t version() const { return version_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  const std::shared_ptr<const ModelSnapshot>& shard(int s) const {
    ACTOR_DCHECK(s >= 0 && s < num_shards()) << "shard " << s;
    return shards_[static_cast<std::size_t>(s)];
  }

  const ShardMapSnapshot& map() const { return *map_; }
  const std::shared_ptr<const ShardMapSnapshot>& map_ptr() const {
    return map_;
  }

  /// Total units across shards.
  int32_t num_units() const;
  int32_t dim() const;

 private:
  ShardedModelSnapshot() = default;

  uint64_t version_ = 0;
  std::vector<std::shared_ptr<const ModelSnapshot>> shards_;
  std::shared_ptr<const ShardMapSnapshot> map_;
};

/// Atomic publish/acquire slot for the composite snapshot — the same
/// release/acquire contract (and the same TSan-aware dual implementation)
/// as serve's SnapshotStore, lifted to the sharded bundle. Publishing the
/// composite as ONE pointer swap is what keeps cross-shard consistency:
/// readers can never observe shard A at version v+1 next to shard B at v.
class ShardedSnapshotStore {
 public:
  ShardedSnapshotStore() = default;
  ShardedSnapshotStore(const ShardedSnapshotStore&) = delete;
  ShardedSnapshotStore& operator=(const ShardedSnapshotStore&) = delete;

  void Publish(std::shared_ptr<const ShardedModelSnapshot> snapshot) {
#if defined(ACTOR_SERVE_ATOMIC_SHARED_PTR)
    slot_.store(std::move(snapshot), std::memory_order_release);
#else
    std::atomic_store_explicit(&slot_, std::move(snapshot),
                               std::memory_order_release);
#endif
  }

  /// Latest published composite; null before the first Publish().
  std::shared_ptr<const ShardedModelSnapshot> Acquire() const {
#if defined(ACTOR_SERVE_ATOMIC_SHARED_PTR)
    return slot_.load(std::memory_order_acquire);
#else
    return std::atomic_load_explicit(&slot_, std::memory_order_acquire);
#endif
  }

 private:
#if defined(ACTOR_SERVE_ATOMIC_SHARED_PTR)
  std::atomic<std::shared_ptr<const ShardedModelSnapshot>> slot_;
#else
  // TSan / pre-C++20 path: the free-function atomic shared_ptr overloads.
  std::shared_ptr<const ShardedModelSnapshot> slot_;
#endif
};

}  // namespace actor

#endif  // ACTOR_SHARD_SHARDED_SNAPSHOT_H_
