#ifndef ACTOR_SHARD_SHARDED_MATRIX_H_
#define ACTOR_SHARD_SHARDED_MATRIX_H_

#include <cstdint>
#include <vector>

#include "embedding/embedding_matrix.h"
#include "shard/vertex_partitioner.h"
#include "util/logging.h"
#include "util/rng.h"

namespace actor {

/// Embedding matrix partitioned by vertex ownership: one independent
/// EmbeddingMatrix allocation per shard, indexed by the local rows of a
/// ShardMap. Each per-shard matrix keeps the 32-byte row alignment of the
/// flat EmbeddingMatrix, so the SIMD kernels are unchanged; what sharding
/// buys is *write isolation* — a shard trainer only ever touches its own
/// allocation, so per-shard epochs need no row-level synchronization at
/// all (docs/sharding.md).
class ShardedEmbeddingMatrix {
 public:
  ShardedEmbeddingMatrix() = default;
  ShardedEmbeddingMatrix(int num_shards, int32_t dim) : dim_(dim) {
    ACTOR_DCHECK(num_shards >= 1);
    shards_.reserve(static_cast<std::size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) shards_.emplace_back(0, dim);
  }

  ShardedEmbeddingMatrix(ShardedEmbeddingMatrix&&) = default;
  ShardedEmbeddingMatrix& operator=(ShardedEmbeddingMatrix&&) = default;
  ShardedEmbeddingMatrix(const ShardedEmbeddingMatrix&) = delete;
  ShardedEmbeddingMatrix& operator=(const ShardedEmbeddingMatrix&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int32_t dim() const { return dim_; }

  EmbeddingMatrix& shard(int s) {
    ACTOR_DCHECK(s >= 0 && s < num_shards()) << "shard " << s;
    return shards_[static_cast<std::size_t>(s)];
  }
  const EmbeddingMatrix& shard(int s) const {
    ACTOR_DCHECK(s >= 0 && s < num_shards()) << "shard " << s;
    return shards_[static_cast<std::size_t>(s)];
  }

  int32_t total_rows() const {
    int32_t n = 0;
    for (const EmbeddingMatrix& m : shards_) n += m.rows();
    return n;
  }

  /// Appends one row to shard `s` (word2vec init when `rng` is given, zero
  /// otherwise); returns the new local row index.
  int32_t AppendRow(int s, Rng* rng) {
    EmbeddingMatrix& m = shard(s);
    const int32_t local = m.rows();
    m.AppendRows(1, rng);
    return local;
  }

  /// Gathers the shards into one flat matrix in global-id order — the
  /// bridge back to every unsharded consumer (flat publish, evaluation,
  /// the shards>1 A/B equivalence tests). O(rows * dim) copy.
  EmbeddingMatrix Gather(const ShardMap& map) const {
    ACTOR_DCHECK(map.num_shards() == num_shards());
    ACTOR_DCHECK(map.num_vertices() == total_rows());
    EmbeddingMatrix out(map.num_vertices(), dim_);
    for (VertexId v = 0; v < map.num_vertices(); ++v) {
      out.SetRow(v, shards_[static_cast<std::size_t>(map.owner(v))].row(
                        map.local_row(v)));
    }
    return out;
  }

  bool DebugValidate() const {
    for (const EmbeddingMatrix& m : shards_) {
      if (!m.DebugValidate()) return false;
    }
    return true;
  }

 private:
  int32_t dim_ = 0;
  std::vector<EmbeddingMatrix> shards_;
};

}  // namespace actor

#endif  // ACTOR_SHARD_SHARDED_MATRIX_H_
