#ifndef ACTOR_SHARD_SHARDED_QUERY_ENGINE_H_
#define ACTOR_SHARD_SHARDED_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "data/record.h"
#include "graph/types.h"
#include "serve/query_engine.h"
#include "shard/sharded_snapshot.h"
#include "util/result.h"

namespace actor {

/// Scatter-gather top-k over one immutable ShardedModelSnapshot: the seed
/// is resolved once against the composite's global ShardMapSnapshot, each
/// shard's flat QueryEngine scores its own rows (sequential or batched —
/// the kernels are unchanged), and the per-shard heads are merged by the
/// same explicit (similarity desc, unit id asc) order the flat engine
/// sorts by. Neighbor ids come back *global*.
///
/// Equivalence contract (locked in by shard_query_engine_test): because
/// every shard scores the same frozen rows the flat engine would (same
/// DotAndNorm2 reduction per row) and ShardMap hands out local ids in
/// global-id order, merging per-shard top-k by (similarity, global id)
/// reproduces the flat engine's result on the gathered matrix exactly —
/// same units, same similarity bits, same order — for any shard count.
///
/// All methods are const and thread-safe; the engine pins the composite
/// snapshot (and through it every per-shard snapshot) for its lifetime, so
/// it can be constructed from ShardedSnapshotStore::Acquire() while the
/// ingest thread keeps publishing.
class ShardedQueryEngine {
 public:
  explicit ShardedQueryEngine(
      std::shared_ptr<const ShardedModelSnapshot> snapshot);

  const ShardedModelSnapshot& snapshot() const { return *snapshot_; }

  /// Top-k units of `result_type` nearest to a geographic point (snapped to
  /// its spatial hotspot via the global resolvers).
  Result<std::vector<Neighbor>> QueryByLocation(const GeoPoint& location,
                                                VertexType result_type,
                                                int k) const;

  /// Top-k units nearest to an hour-of-day.
  Result<std::vector<Neighbor>> QueryByHour(double hour,
                                            VertexType result_type,
                                            int k) const;

  /// Top-k units nearest to a vocabulary word id's unit. Streaming
  /// snapshots resolve word ids, not strings, so like the flat online path
  /// every string keyword reports NotFound.
  Result<std::vector<Neighbor>> QueryByKeyword(const std::string& keyword,
                                               VertexType result_type,
                                               int k) const;

  /// Top-k units of `result_type` by cosine against an arbitrary query
  /// vector. `exclude` is a *global* unit id.
  Result<std::vector<Neighbor>> QueryByVector(
      const float* query, VertexType result_type, int k,
      VertexId exclude = kInvalidVertex) const;

  /// Batched scatter-gather: requests are resolved once globally, scattered
  /// as vector queries through each shard engine's QueryBatch (one blocked
  /// sweep per shard per type block), and merged per request. Results come
  /// back in request order with the same error statuses the flat engine
  /// reports; `BatchQuery::exclude` is global.
  std::vector<Result<std::vector<Neighbor>>> QueryBatch(
      const std::vector<BatchQuery>& queries) const;

 private:
  // The Query-prefixed helpers below are scoring-boundary bodies like the
  // public Query* methods (actor-lint treats them as R10 roots): they may
  // allocate per-request scratch, but nothing reachable beneath them may.

  /// Scatters one resolved query vector to every shard and merges.
  std::vector<Neighbor> QueryScatter(const float* query,
                                     VertexType result_type, int k,
                                     VertexId exclude) const;

  /// Per-shard heads -> global top-k, by (similarity desc, global id asc).
  /// `heads[s]` holds shard s's local-id results; ids are remapped here.
  std::vector<Neighbor> QueryMergeHeads(
      std::vector<std::vector<Neighbor>> heads, int k) const;

  /// Center row of a global unit id (owner shard's frozen copy).
  const float* CenterRow(VertexId global) const;

  std::shared_ptr<const ShardedModelSnapshot> snapshot_;
  std::vector<QueryEngine> engines_;  // one per shard
};

}  // namespace actor

#endif  // ACTOR_SHARD_SHARDED_QUERY_ENGINE_H_
