#ifndef ACTOR_SHARD_SHARDED_EDGE_STORE_H_
#define ACTOR_SHARD_SHARDED_EDGE_STORE_H_

#include <cstdint>
#include <vector>

#include "core/online_edge_store.h"
#include "graph/types.h"
#include "shard/vertex_partitioner.h"
#include "util/logging.h"

namespace actor {

/// One edge type's decaying edge store, partitioned by vertex ownership:
/// one OnlineEdgeStore per shard, all keyed by *global* vertex ids.
///
/// Routing ("local-write" replication): an edge {a, b} is accumulated into
/// the store of every distinct owner among {owner(a), owner(b)} — one store
/// for within-shard edges, two replicas for cross-shard edges. Each shard
/// trainer then draws from its own store and trains only the orientations
/// whose *center* endpoint it owns, so a cross-shard edge receives its two
/// oriented updates from the two owners — the same 2x per-edge budget the
/// unsharded trainer spends, split by ownership (docs/sharding.md).
///
/// Replica consistency: both replicas see the identical Accumulate/Decay
/// sequence, so their weights stay bit-equal and they drop on the same
/// Decay tick. SizeUnique() counts cross-shard edges once by attributing
/// each edge to its canonical src's owner.
class ShardedEdgeStore {
 public:
  ShardedEdgeStore() { stores_.resize(1); }

  /// (Re)creates `num_shards` empty stores with the given drop threshold.
  void Reset(int num_shards, double min_weight) {
    ACTOR_DCHECK(num_shards >= 1);
    stores_.clear();
    stores_.resize(static_cast<std::size_t>(num_shards));
    for (OnlineEdgeStore& store : stores_) store.set_min_weight(min_weight);
  }

  int num_shards() const { return static_cast<int>(stores_.size()); }

  OnlineEdgeStore& shard(int s) {
    ACTOR_DCHECK(s >= 0 && s < num_shards()) << "shard " << s;
    return stores_[static_cast<std::size_t>(s)];
  }
  const OnlineEdgeStore& shard(int s) const {
    ACTOR_DCHECK(s >= 0 && s < num_shards()) << "shard " << s;
    return stores_[static_cast<std::size_t>(s)];
  }

  /// Adds `w` to the undirected edge {a, b} in every owner replica.
  void Accumulate(VertexId a, VertexId b, const ShardMap& map,
                  double w = 1.0) {
    const int sa = map.owner(a);
    const int sb = map.owner(b);
    stores_[static_cast<std::size_t>(sa)].Accumulate(a, b, w);
    if (sb != sa) stores_[static_cast<std::size_t>(sb)].Accumulate(a, b, w);
  }

  /// Uniform decay of every replica (factor in (0, 1]; 1 is a no-op).
  void Decay(double factor) {
    for (OnlineEdgeStore& store : stores_) store.Decay(factor);
  }

  /// Sum of per-shard versions — bumps exactly when any replica's sampling
  /// distribution changed, the same contract OnlineEdgeStore::version()
  /// gives per store.
  uint64_t version() const {
    uint64_t v = 0;
    for (const OnlineEdgeStore& store : stores_) v += store.version();
    return v;
  }

  bool empty() const {
    for (const OnlineEdgeStore& store : stores_) {
      if (!store.empty()) return false;
    }
    return true;
  }

  /// Number of distinct live undirected edges: cross-shard replicas are
  /// counted once, attributed to the canonical src endpoint's owner. O(E)
  /// scan — reporting only, never on the train path.
  std::size_t SizeUnique(const ShardMap& map) const {
    std::size_t n = 0;
    for (int s = 0; s < num_shards(); ++s) {
      const OnlineEdgeStore& store = stores_[static_cast<std::size_t>(s)];
      const std::vector<VertexId>& src = store.src();
      for (std::size_t i = 0; i < src.size(); ++i) {
        if (map.owner(src[i]) == s) ++n;
      }
    }
    return n;
  }

 private:
  std::vector<OnlineEdgeStore> stores_;
};

}  // namespace actor

#endif  // ACTOR_SHARD_SHARDED_EDGE_STORE_H_
