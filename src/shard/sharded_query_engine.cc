#include "shard/sharded_query_engine.h"

#include <algorithm>
#include <utility>

namespace actor {

ShardedQueryEngine::ShardedQueryEngine(
    std::shared_ptr<const ShardedModelSnapshot> snapshot)
    : snapshot_(std::move(snapshot)) {
  ACTOR_DCHECK(snapshot_ != nullptr);
  engines_.reserve(static_cast<std::size_t>(snapshot_->num_shards()));
  for (int s = 0; s < snapshot_->num_shards(); ++s) {
    engines_.emplace_back(snapshot_->shard(s));
  }
}

const float* ShardedQueryEngine::CenterRow(VertexId global) const {
  const ShardMapSnapshot& map = snapshot_->map();
  ACTOR_DCHECK(global >= 0 && global < map.num_vertices());
  const int s = map.owner[static_cast<std::size_t>(global)];
  return snapshot_->shard(s)->center().row(
      map.local[static_cast<std::size_t>(global)]);
}

std::vector<Neighbor> ShardedQueryEngine::QueryMergeHeads(
    std::vector<std::vector<Neighbor>> heads, int k) const {
  const ShardMapSnapshot& map = snapshot_->map();
  std::vector<Neighbor> merged;
  std::size_t total = 0;
  for (const auto& head : heads) total += head.size();
  merged.reserve(total);
  for (int s = 0; s < static_cast<int>(heads.size()); ++s) {
    for (Neighbor& n : heads[static_cast<std::size_t>(s)]) {
      n.vertex = map.globals[static_cast<std::size_t>(s)]
                            [static_cast<std::size_t>(n.vertex)];
      merged.push_back(std::move(n));
    }
  }
  // The same explicit total order the flat engine sorts by; per-shard local
  // order agrees with global order (ShardMap's order-preserving local ids),
  // so the merged head of S per-shard top-k lists IS the global top-k.
  std::sort(merged.begin(), merged.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.similarity > b.similarity ||
                     (a.similarity == b.similarity && a.vertex < b.vertex);
            });
  if (merged.size() > static_cast<std::size_t>(k)) merged.resize(k);
  return merged;
}

std::vector<Neighbor> ShardedQueryEngine::QueryScatter(
    const float* query, VertexType result_type, int k,
    VertexId exclude) const {
  const ShardMapSnapshot& map = snapshot_->map();
  std::vector<std::vector<Neighbor>> heads(
      static_cast<std::size_t>(snapshot_->num_shards()));
  for (int s = 0; s < snapshot_->num_shards(); ++s) {
    VertexId local_exclude = kInvalidVertex;
    if (exclude != kInvalidVertex &&
        map.owner[static_cast<std::size_t>(exclude)] == s) {
      local_exclude = map.local[static_cast<std::size_t>(exclude)];
    }
    // k > 0 was checked by the caller, so the per-shard query cannot fail
    // (debug-asserted inside MoveValueUnchecked).
    auto head = engines_[static_cast<std::size_t>(s)].QueryByVector(
        query, result_type, k, local_exclude);
    heads[static_cast<std::size_t>(s)] = head.MoveValueUnchecked();
  }
  return QueryMergeHeads(std::move(heads), k);
}

Result<std::vector<Neighbor>> ShardedQueryEngine::QueryByVector(
    const float* query, VertexType result_type, int k,
    VertexId exclude) const {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  return QueryScatter(query, result_type, k, exclude);
}

Result<std::vector<Neighbor>> ShardedQueryEngine::QueryByLocation(
    const GeoPoint& location, VertexType result_type, int k) const {
  const VertexId v = snapshot_->map().SpatialVertex(location);
  if (v == kInvalidVertex) {
    return Status::NotFound("no spatial hotspots available");
  }
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  return QueryScatter(CenterRow(v), result_type, k, v);
}

Result<std::vector<Neighbor>> ShardedQueryEngine::QueryByHour(
    double hour, VertexType result_type, int k) const {
  const VertexId v = snapshot_->map().TemporalVertexAtHour(hour);
  if (v == kInvalidVertex) {
    return Status::NotFound("no temporal hotspots available");
  }
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  return QueryScatter(CenterRow(v), result_type, k, v);
}

Result<std::vector<Neighbor>> ShardedQueryEngine::QueryByKeyword(
    const std::string& keyword, VertexType result_type, int k) const {
  // Streaming snapshots carry no vocabulary (the flat online path's
  // LookupWord always reports unknown); mirror its error exactly.
  return Status::NotFound("keyword not in vocabulary: " + keyword);
}

std::vector<Result<std::vector<Neighbor>>> ShardedQueryEngine::QueryBatch(
    const std::vector<BatchQuery>& queries) const {
  const ShardMapSnapshot& map = snapshot_->map();
  const std::size_t b = queries.size();
  const int num_shards = snapshot_->num_shards();

  // Per-request resolution against the global resolvers, running the same
  // checks in the same order as the flat engine's QueryBatch so error
  // statuses (and their precedence over the k check) match exactly.
  std::vector<Status> errors(b);       // OK marks the request scorable
  std::vector<std::size_t> scorable;   // request index per scatter slot
  std::vector<BatchQuery> scatter;     // global-exclude vector queries
  for (std::size_t i = 0; i < b; ++i) {
    const BatchQuery& q = queries[i];
    VertexId v = kInvalidVertex;
    switch (q.kind) {
      case BatchQuery::Kind::kLocation:
        v = map.SpatialVertex(q.location);
        if (v == kInvalidVertex) {
          errors[i] = Status::NotFound("no spatial hotspots available");
          continue;
        }
        break;
      case BatchQuery::Kind::kHour:
        v = map.TemporalVertexAtHour(q.hour);
        if (v == kInvalidVertex) {
          errors[i] = Status::NotFound("no temporal hotspots available");
          continue;
        }
        break;
      case BatchQuery::Kind::kKeyword:
        errors[i] =
            Status::NotFound("keyword not in vocabulary: " + q.keyword);
        continue;
      case BatchQuery::Kind::kVector:
        break;
    }
    if (q.k <= 0) {
      errors[i] = Status::InvalidArgument("k must be positive");
      continue;
    }
    const float* query = v == kInvalidVertex ? q.vector : CenterRow(v);
    const VertexId exclude = v == kInvalidVertex ? q.exclude : v;
    scorable.push_back(i);
    scatter.push_back(
        BatchQuery::Vector(query, q.result_type, q.k, exclude));
  }

  // Scatter: every shard scores the same slot list through its flat
  // batched path (one blocked sweep per populated type block per shard).
  std::vector<std::vector<Result<std::vector<Neighbor>>>> shard_results(
      static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    std::vector<BatchQuery> local = scatter;
    for (BatchQuery& q : local) {
      if (q.exclude == kInvalidVertex) continue;
      q.exclude = map.owner[static_cast<std::size_t>(q.exclude)] == s
                      ? map.local[static_cast<std::size_t>(q.exclude)]
                      : kInvalidVertex;
    }
    shard_results[static_cast<std::size_t>(s)] =
        engines_[static_cast<std::size_t>(s)].QueryBatch(local);
  }

  // Gather: merge each request's per-shard heads in request order.
  std::vector<Result<std::vector<Neighbor>>> out;
  out.reserve(b);
  std::size_t slot = 0;
  for (std::size_t i = 0; i < b; ++i) {
    if (!errors[i].ok()) {
      out.push_back(errors[i]);
      continue;
    }
    std::vector<std::vector<Neighbor>> heads(
        static_cast<std::size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      // Scatter slots are pre-validated vector queries, so the per-shard
      // result cannot be an error (debug-asserted in MoveValueUnchecked).
      auto& r = shard_results[static_cast<std::size_t>(s)][slot];
      heads[static_cast<std::size_t>(s)] = r.MoveValueUnchecked();
    }
    out.push_back(QueryMergeHeads(std::move(heads), queries[i].k));
    ++slot;
  }
  return out;
}

}  // namespace actor
