#ifndef ACTOR_SHARD_REMOTE_TILE_CACHE_H_
#define ACTOR_SHARD_REMOTE_TILE_CACHE_H_

#include <cstdint>
#include <unordered_map>

#include "embedding/embedding_matrix.h"
#include "graph/types.h"
#include "util/logging.h"

namespace actor {

/// Per-shard read-snapshot of the *context* rows of remote vertices the
/// shard's edges touch — the single-machine analogue of DistEmbed's tile
/// exchange. Refreshed at the batch barrier (before the per-shard epochs
/// are dispatched) by copying each remote endpoint's context row from its
/// owner shard; during the epoch the trainer reads AND writes these private
/// copies freely (the positive-context update of a remote vertex lands
/// here), and the deltas are deliberately discarded at the next refresh.
///
/// Freshness contract (docs/sharding.md): a cached row is one batch stale
/// at most — it reflects the owner's state as of the last barrier. Remote
/// context-gradient contributions are dropped rather than pushed back;
/// owners see remote vertices only through their own replicas of the shared
/// edges. This is the staleness/communication trade every parameter-server
/// embedding system makes; here it buys full write isolation, which is what
/// makes sharded training deterministic at any thread count.
///
/// Thread-compatibility: Put() is barrier-only (ingest thread);
/// row() / lookups are used by exactly one shard epoch at a time. Slots
/// persist across batches (vertices never disappear), so steady-state
/// refreshes allocate nothing new.
class RemoteTileCache {
 public:
  RemoteTileCache() = default;

  void SetDim(int32_t dim) {
    ACTOR_DCHECK(rows_.rows() == 0) << "SetDim after rows were cached";
    dim_ = dim;
    rows_ = EmbeddingMatrix(0, dim);
  }

  /// Ensures a slot for `v` exists and copies `src` (dim floats) into it.
  /// Barrier-only: may allocate for first-seen vertices.
  void Put(VertexId v, const float* src) {
    ACTOR_DCHECK(dim_ > 0) << "SetDim before Put";
    auto it = slots_.find(v);
    int32_t slot;
    if (it == slots_.end()) {
      slot = rows_.rows();
      rows_.AppendRows(1, nullptr);
      slots_.emplace(v, slot);
    } else {
      slot = it->second;
    }
    rows_.SetRow(slot, src);
  }

  /// Hot-path lookup: the private copy of `v`'s context row. `v` must have
  /// been Put() at the last barrier — a miss is a trainer routing bug.
  float* row(VertexId v) {
    auto it = slots_.find(v);
    ACTOR_DCHECK(it != slots_.end()) << "remote tile miss for vertex " << v;
    return rows_.row(it->second);
  }

  bool Contains(VertexId v) const { return slots_.find(v) != slots_.end(); }

  /// Number of distinct remote vertices ever cached.
  std::size_t size() const { return slots_.size(); }

 private:
  int32_t dim_ = 0;
  std::unordered_map<VertexId, int32_t> slots_;
  EmbeddingMatrix rows_;
};

}  // namespace actor

#endif  // ACTOR_SHARD_REMOTE_TILE_CACHE_H_
