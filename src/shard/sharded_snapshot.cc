#include "shard/sharded_snapshot.h"

#include <limits>
#include <utility>

namespace actor {

VertexId ShardMapSnapshot::SpatialVertex(const GeoPoint& location) const {
  // Same nearest-center scan as ModelSnapshot's online path (which itself
  // mirrors OnlineActor::SpatialUnit), so a sharded engine and a flat
  // engine seeded from the same model state pick the same seed unit.
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < spatial_centers.size(); ++i) {
    const double d = Distance(location, spatial_centers[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best < 0 ? kInvalidVertex : spatial_units[best];
}

VertexId ShardMapSnapshot::TemporalVertexAt(double timestamp) const {
  return TemporalVertexAtHour(HourOfDay(timestamp));
}

VertexId ShardMapSnapshot::TemporalVertexAtHour(double hour) const {
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < temporal_hours.size(); ++i) {
    const double d = CircularHourDistance(hour, temporal_hours[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best < 0 ? kInvalidVertex : temporal_units[best];
}

VertexId ShardMapSnapshot::WordVertex(int32_t word_id) const {
  const auto it = word_units.find(word_id);
  return it == word_units.end() ? kInvalidVertex : it->second;
}

std::shared_ptr<const ShardedModelSnapshot> ShardedModelSnapshot::Make(
    std::vector<std::shared_ptr<const ModelSnapshot>> shards,
    std::shared_ptr<const ShardMapSnapshot> map, uint64_t version) {
  ACTOR_DCHECK(map != nullptr);
  ACTOR_DCHECK(static_cast<int>(shards.size()) == map->num_shards);
  auto snap = std::shared_ptr<ShardedModelSnapshot>(new ShardedModelSnapshot());
  snap->version_ = version;
  snap->shards_ = std::move(shards);
  snap->map_ = std::move(map);
#if !defined(NDEBUG)
  int32_t total = 0;
  for (int s = 0; s < snap->num_shards(); ++s) {
    ACTOR_DCHECK(snap->shards_[static_cast<std::size_t>(s)] != nullptr);
    total += snap->shards_[static_cast<std::size_t>(s)]->num_units();
  }
  ACTOR_DCHECK(total == snap->map_->num_vertices())
      << "shard snapshots cover " << total << " units, map has "
      << snap->map_->num_vertices();
#endif
  return snap;
}

int32_t ShardedModelSnapshot::num_units() const {
  int32_t n = 0;
  for (const auto& s : shards_) n += s->num_units();
  return n;
}

int32_t ShardedModelSnapshot::dim() const {
  return shards_.empty() ? 0 : shards_.front()->dim();
}

}  // namespace actor
