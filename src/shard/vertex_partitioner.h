#ifndef ACTOR_SHARD_VERTEX_PARTITIONER_H_
#define ACTOR_SHARD_VERTEX_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/logging.h"
#include "util/rng.h"

namespace actor {

/// How a VertexPartitioner assigns vertex ids to shards.
///
/// * kHash — SplitMix64 of the vertex id, modulo the shard count. Spreads
///   hot vertices uniformly regardless of arrival order; the default.
/// * kRange — contiguous blocks of `range_block` consecutive ids,
///   round-robined across shards. Preserves id locality (units created
///   together, which tend to co-occur in edges, land on the same shard),
///   trading balance for fewer cross-shard edges.
enum class ShardStrategy : uint8_t { kHash = 0, kRange };

/// Partitioning spec. `per_type` optionally overrides the strategy for an
/// individual vertex type (the paper's T/L/W/U modalities have very
/// different id-arrival patterns: temporal units are dense and periodic,
/// words are heavy-tailed), indexed by static_cast<int>(VertexType).
struct PartitionSpec {
  int num_shards = 1;
  ShardStrategy strategy = ShardStrategy::kHash;
  int32_t range_block = 64;
  ShardStrategy per_type[kNumVertexTypes] = {
      ShardStrategy::kHash, ShardStrategy::kHash, ShardStrategy::kHash,
      ShardStrategy::kHash};
  bool use_per_type = false;
};

/// Pure function from (vertex id, vertex type) to owner shard. Stateless,
/// so the same spec reproduces the same assignment in every process — the
/// property the multi-process extension relies on (docs/sharding.md).
class VertexPartitioner {
 public:
  VertexPartitioner() : spec_{} {}
  explicit VertexPartitioner(const PartitionSpec& spec) : spec_(spec) {
    ACTOR_DCHECK(spec.num_shards >= 1)
        << "num_shards must be >= 1, got " << spec.num_shards;
    ACTOR_DCHECK(spec.range_block >= 1);
  }

  int num_shards() const { return spec_.num_shards; }

  /// Owner shard of vertex `v` (dense id) of the given type.
  int Assign(VertexId v, VertexType type) const {
    ACTOR_DCHECK(v >= 0);
    if (spec_.num_shards == 1) return 0;
    const ShardStrategy strategy =
        spec_.use_per_type ? spec_.per_type[static_cast<int>(type)]
                           : spec_.strategy;
    if (strategy == ShardStrategy::kRange) {
      return static_cast<int>((v / spec_.range_block) %
                              spec_.num_shards);
    }
    return static_cast<int>(SplitMix64(static_cast<uint64_t>(v)) %
                            static_cast<uint64_t>(spec_.num_shards));
  }

 private:
  PartitionSpec spec_;
};

/// Explicit tile-ownership map: global vertex id -> (owner shard, local
/// row). The single-machine analogue of DistEmbed's process-grid tile map —
/// every sharded container (ShardedEmbeddingMatrix, ShardedEdgeStore, the
/// per-shard snapshots) indexes its rows by the local ids recorded here.
///
/// Invariant — *order-preserving local ids*: vertices are registered in
/// global-id order (AddVertex requires global == num_vertices()), and each
/// shard hands out local rows in registration order, so `globals(s)` is
/// strictly increasing. Scatter-gather top-k relies on this: per-shard
/// (score, local id) order agrees with global (score, global id) order, so
/// merging per-shard heads reproduces the unsharded tie-break exactly.
class ShardMap {
 public:
  ShardMap() : ShardMap(1) {}
  explicit ShardMap(int num_shards)
      : num_shards_(num_shards), globals_(num_shards) {
    ACTOR_DCHECK(num_shards >= 1);
  }

  int num_shards() const { return num_shards_; }
  int32_t num_vertices() const { return static_cast<int32_t>(owner_.size()); }

  /// Registers the next global vertex on `owner`; returns its local row.
  int32_t AddVertex(VertexId global, int owner) {
    ACTOR_DCHECK(global == num_vertices())
        << "vertices must be registered in global-id order: got " << global
        << ", expected " << num_vertices();
    ACTOR_DCHECK(owner >= 0 && owner < num_shards_);
    const int32_t local = static_cast<int32_t>(globals_[owner].size());
    owner_.push_back(owner);
    local_.push_back(local);
    globals_[owner].push_back(global);
    return local;
  }

  int owner(VertexId v) const {
    ACTOR_DCHECK(v >= 0 && v < num_vertices()) << "vertex " << v;
    return owner_[static_cast<std::size_t>(v)];
  }

  int32_t local_row(VertexId v) const {
    ACTOR_DCHECK(v >= 0 && v < num_vertices()) << "vertex " << v;
    return local_[static_cast<std::size_t>(v)];
  }

  VertexId global_id(int shard, int32_t local) const {
    ACTOR_DCHECK(shard >= 0 && shard < num_shards_);
    ACTOR_DCHECK(local >= 0 &&
                 local < static_cast<int32_t>(globals_[shard].size()));
    return globals_[shard][static_cast<std::size_t>(local)];
  }

  /// Global ids owned by `shard`, in local-row order (strictly increasing).
  const std::vector<VertexId>& globals(int shard) const {
    ACTOR_DCHECK(shard >= 0 && shard < num_shards_);
    return globals_[shard];
  }

  /// Whole-array views, for freezing the map into a ShardMapSnapshot.
  const std::vector<int32_t>& owners() const { return owner_; }
  const std::vector<int32_t>& locals() const { return local_; }
  const std::vector<std::vector<VertexId>>& all_globals() const {
    return globals_;
  }

  int32_t shard_size(int shard) const {
    ACTOR_DCHECK(shard >= 0 && shard < num_shards_);
    return static_cast<int32_t>(globals_[shard].size());
  }

 private:
  int num_shards_ = 1;
  std::vector<int32_t> owner_;              // global id -> shard
  std::vector<int32_t> local_;              // global id -> local row
  std::vector<std::vector<VertexId>> globals_;  // shard -> local -> global
};

}  // namespace actor

#endif  // ACTOR_SHARD_VERTEX_PARTITIONER_H_
