#ifndef ACTOR_DATA_VOCABULARY_H_
#define ACTOR_DATA_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace actor {

/// Bidirectional word <-> id mapping with corpus frequencies. Ids are dense
/// in [0, size()).
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Adds one occurrence of `word`, interning it if new. Returns its id.
  int32_t AddOccurrence(const std::string& word);

  /// Id of `word`, or -1 if unknown.
  int32_t Lookup(const std::string& word) const;

  /// Word for `id`; CHECK-fails on out-of-range ids.
  const std::string& word(int32_t id) const;

  /// Total occurrences recorded for `id`.
  int64_t count(int32_t id) const;

  int32_t size() const { return static_cast<int32_t>(words_.size()); }

  /// Returns a vocabulary restricted to words with count >= min_count,
  /// keeping at most max_size words (highest-count first; ties broken by
  /// first-seen order). Ids are re-assigned densely in the returned
  /// vocabulary.
  Vocabulary Prune(int64_t min_count, int32_t max_size) const;

  /// All words, indexed by id.
  const std::vector<std::string>& words() const { return words_; }

 private:
  std::vector<std::string> words_;
  std::vector<int64_t> counts_;
  std::unordered_map<std::string, int32_t> index_;
};

}  // namespace actor

#endif  // ACTOR_DATA_VOCABULARY_H_
