#include "data/vocabulary.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace actor {

int32_t Vocabulary::AddOccurrence(const std::string& word) {
  auto it = index_.find(word);
  if (it != index_.end()) {
    ++counts_[it->second];
    return it->second;
  }
  const int32_t id = static_cast<int32_t>(words_.size());
  words_.push_back(word);
  counts_.push_back(1);
  index_.emplace(word, id);
  return id;
}

int32_t Vocabulary::Lookup(const std::string& word) const {
  auto it = index_.find(word);
  return it == index_.end() ? -1 : it->second;
}

const std::string& Vocabulary::word(int32_t id) const {
  ACTOR_CHECK(id >= 0 && id < size()) << "vocabulary id " << id;
  return words_[id];
}

int64_t Vocabulary::count(int32_t id) const {
  ACTOR_CHECK(id >= 0 && id < size()) << "vocabulary id " << id;
  return counts_[id];
}

Vocabulary Vocabulary::Prune(int64_t min_count, int32_t max_size) const {
  std::vector<int32_t> ids(words_.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [this](int32_t a, int32_t b) {
    return counts_[a] > counts_[b];
  });
  Vocabulary pruned;
  for (int32_t id : ids) {
    if (counts_[id] < min_count) break;  // sorted: everything after is rarer
    if (pruned.size() >= max_size) break;
    const int32_t new_id = pruned.AddOccurrence(words_[id]);
    pruned.counts_[new_id] = counts_[id];
  }
  return pruned;
}

}  // namespace actor
