#ifndef ACTOR_DATA_SYNTHETIC_H_
#define ACTOR_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "data/record.h"
#include "util/result.h"

namespace actor {

/// Parameters of the synthetic urban-activity generator. The generator
/// replaces the paper's UTGEO2011 / TWEET / 4SQ corpora (see DESIGN.md §2):
/// it produces records whose location, time-of-day, text, and social
/// structure are coupled through latent venues, activity topics, circadian
/// profiles, and user communities — including the cross-record
/// "text -> user -> user -> (location, time)" signal of paper Fig. 1.
struct SyntheticConfig {
  uint64_t seed = 42;

  int num_records = 20000;
  int num_users = 1000;
  int num_communities = 12;
  int num_topics = 20;
  int num_venues = 200;

  /// Topic-specific keyword pool size and shared background pool size.
  int keywords_per_topic = 60;
  int background_vocab = 300;

  /// City bounding box is [0, city_size_km]^2.
  double city_size_km = 40.0;
  /// Std-dev of GPS jitter around the venue location.
  double gps_noise_km = 0.15;
  /// Std-dev of posting-time jitter around the topic's peak hour.
  double time_noise_hours = 0.9;
  /// Corpus time span in days.
  int days = 90;

  /// Probability that a record @-mentions another user (UTGEO2011: 16.8%).
  double mention_prob = 0.168;
  /// If false, mentions are generated (so the social structure shapes the
  /// data) but stripped from the emitted records — models TWEET/4SQ where
  /// "we have no information about the user interactions" (paper §6.3).
  bool emit_mentions = true;

  /// Text length: min_words + Poisson(mean_extra_words) keywords.
  int min_words = 3;
  double mean_extra_words = 4.0;
  /// Probability that a keyword comes from the background pool instead of
  /// the record's topic.
  double background_word_prob = 0.2;
  /// Probability that the venue's own name-keyword appears in the text.
  double venue_keyword_prob = 0.6;

  /// Zipf exponent for user activity (a few users post a lot).
  double user_activity_exponent = 1.1;
  /// Zipf exponent for within-topic keyword frequencies.
  double keyword_exponent = 1.05;
  /// Geographic std-dev of venues around their community's district centre.
  double community_spread_km = 5.0;
  /// When a record mentions user A, probability that it is posted from one
  /// of A's favourite venues (plants the inter-record high-order signal).
  double mention_covisit_prob = 0.7;
  /// Number of favourite venues per user.
  int favourite_venues_per_user = 5;
};

/// Ground truth of the generative process, exposed for tests and for
/// qualitative evaluation of learned embeddings.
struct SyntheticGroundTruth {
  /// Venue -> planar location.
  std::vector<GeoPoint> venue_locations;
  /// Venue -> topic id.
  std::vector<int> venue_topics;
  /// Venue -> its name keyword (e.g. "venue_17_plaza").
  std::vector<std::string> venue_keywords;
  /// Topic -> peak hour-of-day in [0, 24).
  std::vector<double> topic_peak_hours;
  /// Topic -> its keyword strings (most frequent first).
  std::vector<std::vector<std::string>> topic_keywords;
  /// User -> community id.
  std::vector<int> user_communities;
  /// User -> favourite venue ids.
  std::vector<std::vector<int>> user_favourite_venues;
  /// Record -> generating venue id (aligned with corpus order).
  std::vector<int> record_venues;
  /// Record -> generating topic id.
  std::vector<int> record_topics;
};

/// A generated corpus together with its ground truth.
struct SyntheticDataset {
  std::string name;
  Corpus corpus;
  SyntheticGroundTruth truth;
};

/// Generates a dataset from `config`. Deterministic given `config.seed`.
/// Returns InvalidArgument for non-positive sizes or probabilities outside
/// [0, 1].
Result<SyntheticDataset> GenerateSynthetic(const SyntheticConfig& config,
                                           std::string name = "synthetic");

/// Preset mirroring UTGEO2011: @-mentions present (16.8% of records),
/// broad vocabulary. `scale` multiplies record/user/venue counts.
SyntheticConfig UTGeoLikeConfig(double scale = 1.0);

/// Preset mirroring TWEET (LA geo-tweets): no mention information emitted,
/// larger corpus.
SyntheticConfig TweetLikeConfig(double scale = 1.0);

/// Preset mirroring 4SQ (NYC check-ins): small vocabulary, short check-in
/// texts dominated by venue keywords, no mention information.
SyntheticConfig FourSqLikeConfig(double scale = 1.0);

}  // namespace actor

#endif  // ACTOR_DATA_SYNTHETIC_H_
