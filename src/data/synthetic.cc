#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace actor {
namespace {

/// CDF-based discrete sampler; O(log n) per draw. Generation is one-off so
/// this is simpler than an alias table and fast enough.
class CdfSampler {
 public:
  explicit CdfSampler(const std::vector<double>& weights) {
    cdf_.reserve(weights.size());
    double acc = 0.0;
    for (double w : weights) {
      acc += std::max(w, 0.0);
      cdf_.push_back(acc);
    }
    total_ = acc;
  }

  std::size_t Sample(Rng& rng) const {
    ACTOR_DCHECK(!cdf_.empty() && total_ > 0.0)
        << "sampling from empty/zero-mass distribution ";
    const double u = rng.UniformDouble() * total_;
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

std::vector<double> ZipfWeights(int n, double exponent) {
  std::vector<double> w(n);
  for (int i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  return w;
}

int PoissonDraw(Rng& rng, double mean) {
  // Knuth's algorithm; means here are small (< 10).
  const double limit = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.UniformDouble();
  } while (p > limit);
  return k - 1;
}

double WrapHour(double h) {
  h = std::fmod(h, 24.0);
  if (h < 0.0) h += 24.0;
  return h;
}

// Venue name fragments for readable venue keywords.
const char* const kVenueSuffixes[] = {
    "plaza",  "park",   "cafe",   "bar",     "theatre", "pier",
    "market", "gym",    "museum", "stadium", "club",    "hall",
    "garden", "bistro", "pub",    "gallery", "arena",   "lounge",
};

Status Validate(const SyntheticConfig& c) {
  if (c.num_records <= 0 || c.num_users <= 0 || c.num_topics <= 0 ||
      c.num_venues <= 0 || c.num_communities <= 0) {
    return Status::InvalidArgument("synthetic sizes must be positive");
  }
  if (c.mention_prob < 0.0 || c.mention_prob > 1.0 ||
      c.background_word_prob < 0.0 || c.background_word_prob > 1.0 ||
      c.venue_keyword_prob < 0.0 || c.venue_keyword_prob > 1.0 ||
      c.mention_covisit_prob < 0.0 || c.mention_covisit_prob > 1.0) {
    return Status::InvalidArgument("probabilities must lie in [0, 1]");
  }
  if (c.keywords_per_topic <= 0 || c.min_words < 0) {
    return Status::InvalidArgument("keyword counts must be non-negative");
  }
  if (c.city_size_km <= 0.0 || c.days <= 0) {
    return Status::InvalidArgument("city size and days must be positive");
  }
  return Status::OK();
}

}  // namespace

Result<SyntheticDataset> GenerateSynthetic(const SyntheticConfig& config,
                                           std::string name) {
  ACTOR_RETURN_NOT_OK(Validate(config));
  Rng rng(config.seed);
  SyntheticDataset dataset;
  dataset.name = std::move(name);
  SyntheticGroundTruth& truth = dataset.truth;

  // --- Latent structure -----------------------------------------------
  // Districts: community geographic centres spread over the city.
  std::vector<GeoPoint> district_centers(config.num_communities);
  for (auto& c : district_centers) {
    c.x = rng.UniformRange(0.15, 0.85) * config.city_size_km;
    c.y = rng.UniformRange(0.15, 0.85) * config.city_size_km;
  }

  // Topics: keyword pools, Zipf word popularity, circadian peak.
  truth.topic_peak_hours.resize(config.num_topics);
  truth.topic_keywords.resize(config.num_topics);
  std::vector<CdfSampler> topic_word_samplers;
  topic_word_samplers.reserve(config.num_topics);
  for (int t = 0; t < config.num_topics; ++t) {
    truth.topic_peak_hours[t] = rng.UniformRange(0.0, 24.0);
    auto& words = truth.topic_keywords[t];
    words.reserve(config.keywords_per_topic);
    for (int j = 0; j < config.keywords_per_topic; ++j) {
      words.push_back(StrPrintf("topic%d_word%03d", t, j));
    }
    topic_word_samplers.emplace_back(
        ZipfWeights(config.keywords_per_topic, config.keyword_exponent));
  }
  std::vector<std::string> background_words(config.background_vocab);
  for (int j = 0; j < config.background_vocab; ++j) {
    background_words[j] = StrPrintf("common_word%04d", j);
  }
  CdfSampler background_sampler(
      ZipfWeights(config.background_vocab, config.keyword_exponent));

  // Venues: each belongs to a community district and a topic.
  truth.venue_locations.resize(config.num_venues);
  truth.venue_topics.resize(config.num_venues);
  truth.venue_keywords.resize(config.num_venues);
  std::vector<std::vector<int>> community_venues(config.num_communities);
  for (int v = 0; v < config.num_venues; ++v) {
    const int community = static_cast<int>(rng.Uniform(config.num_communities));
    const GeoPoint& center = district_centers[community];
    GeoPoint loc;
    loc.x = std::clamp(rng.Gaussian(center.x, config.community_spread_km), 0.0,
                       config.city_size_km);
    loc.y = std::clamp(rng.Gaussian(center.y, config.community_spread_km), 0.0,
                       config.city_size_km);
    truth.venue_locations[v] = loc;
    truth.venue_topics[v] = static_cast<int>(rng.Uniform(config.num_topics));
    const char* suffix =
        kVenueSuffixes[rng.Uniform(std::size(kVenueSuffixes))];
    truth.venue_keywords[v] = StrPrintf("venue_%d_%s", v, suffix);
    community_venues[community].push_back(v);
  }
  // Ensure every community has at least one venue.
  for (int c = 0; c < config.num_communities; ++c) {
    if (community_venues[c].empty()) {
      community_venues[c].push_back(
          static_cast<int>(rng.Uniform(config.num_venues)));
    }
  }

  // Users: community membership, activity weight, favourite venues.
  truth.user_communities.resize(config.num_users);
  truth.user_favourite_venues.resize(config.num_users);
  std::vector<std::vector<int>> community_users(config.num_communities);
  for (int u = 0; u < config.num_users; ++u) {
    const int community = static_cast<int>(rng.Uniform(config.num_communities));
    truth.user_communities[u] = community;
    community_users[community].push_back(u);
    const auto& venues = community_venues[community];
    auto& favs = truth.user_favourite_venues[u];
    const int n_fav = std::max(1, config.favourite_venues_per_user);
    for (int k = 0; k < n_fav; ++k) {
      favs.push_back(venues[rng.Uniform(venues.size())]);
    }
  }
  CdfSampler user_sampler(
      ZipfWeights(config.num_users, config.user_activity_exponent));

  // --- Records ----------------------------------------------------------
  truth.record_venues.reserve(config.num_records);
  truth.record_topics.reserve(config.num_records);
  for (int i = 0; i < config.num_records; ++i) {
    RawRecord rec;
    rec.id = i;
    const int user = static_cast<int>(user_sampler.Sample(rng));
    rec.user_id = user;
    const int community = truth.user_communities[user];

    // Optional mention: drawn from the same community; with probability
    // mention_covisit_prob the record is posted from one of the *mentioned*
    // user's favourite venues, so its text/location/time reflect that
    // user's habits (paper Fig. 1's inter-record correlation).
    int mentioned = -1;
    const auto& peers = community_users[community];
    if (peers.size() > 1 && rng.Bernoulli(config.mention_prob)) {
      do {
        mentioned = peers[rng.Uniform(peers.size())];
      } while (mentioned == user);
    }

    // Venue choice.
    int venue;
    if (mentioned >= 0 && rng.Bernoulli(config.mention_covisit_prob)) {
      const auto& favs = truth.user_favourite_venues[mentioned];
      venue = favs[rng.Uniform(favs.size())];
    } else if (rng.Bernoulli(0.8)) {
      const auto& favs = truth.user_favourite_venues[user];
      venue = favs[rng.Uniform(favs.size())];
    } else {
      venue = static_cast<int>(rng.Uniform(config.num_venues));
    }
    const int topic = truth.venue_topics[venue];
    truth.record_venues.push_back(venue);
    truth.record_topics.push_back(topic);

    // Time: uniform day, hour around the topic's circadian peak.
    const int day = static_cast<int>(rng.Uniform(config.days));
    const double hour = WrapHour(
        rng.Gaussian(truth.topic_peak_hours[topic], config.time_noise_hours));
    rec.timestamp = day * kSecondsPerDay + hour * 3600.0;

    // Location: venue + GPS noise, clamped to the city box.
    const GeoPoint& vloc = truth.venue_locations[venue];
    rec.location.x = std::clamp(rng.Gaussian(vloc.x, config.gps_noise_km), 0.0,
                                config.city_size_km);
    rec.location.y = std::clamp(rng.Gaussian(vloc.y, config.gps_noise_km), 0.0,
                                config.city_size_km);

    // Text: venue keyword + topic keywords + background keywords.
    std::vector<std::string> words;
    if (rng.Bernoulli(config.venue_keyword_prob)) {
      words.push_back(truth.venue_keywords[venue]);
    }
    const int n_words =
        config.min_words + PoissonDraw(rng, config.mean_extra_words);
    for (int w = 0; w < n_words; ++w) {
      if (rng.Bernoulli(config.background_word_prob)) {
        words.push_back(background_words[background_sampler.Sample(rng)]);
      } else {
        words.push_back(
            truth.topic_keywords[topic][topic_word_samplers[topic].Sample(rng)]);
      }
    }
    rec.text = Join(words, " ");

    if (mentioned >= 0 && config.emit_mentions) {
      rec.mentioned_user_ids.push_back(mentioned);
    }
    dataset.corpus.Add(std::move(rec));
  }
  return dataset;
}

SyntheticConfig UTGeoLikeConfig(double scale) {
  SyntheticConfig c;
  c.seed = 20111104;
  c.num_records = static_cast<int>(24000 * scale);
  c.num_users = static_cast<int>(1500 * scale);
  c.num_communities = 15;
  c.num_topics = 24;
  c.num_venues = static_cast<int>(260 * scale);
  c.keywords_per_topic = 70;
  c.background_vocab = 400;
  c.mention_prob = 0.168;
  c.emit_mentions = true;
  return c;
}

SyntheticConfig TweetLikeConfig(double scale) {
  SyntheticConfig c;
  c.seed = 20140801;
  c.num_records = static_cast<int>(32000 * scale);
  c.num_users = static_cast<int>(1800 * scale);
  c.num_communities = 16;
  c.num_topics = 28;
  c.num_venues = static_cast<int>(300 * scale);
  c.keywords_per_topic = 70;
  c.background_vocab = 450;
  c.mention_prob = 0.12;   // the social structure still shapes the data...
  c.emit_mentions = false;  // ...but mention edges are not observable.
  return c;
}

SyntheticConfig FourSqLikeConfig(double scale) {
  SyntheticConfig c;
  c.seed = 20100815;
  c.num_records = static_cast<int>(16000 * scale);
  c.num_users = static_cast<int>(900 * scale);
  c.num_communities = 12;
  c.num_topics = 16;
  c.num_venues = static_cast<int>(320 * scale);
  c.keywords_per_topic = 28;  // check-in vocabulary is small (paper: 3,973)
  c.background_vocab = 120;
  c.min_words = 2;
  c.mean_extra_words = 2.0;    // short check-in texts
  c.venue_keyword_prob = 0.9;  // check-ins name the venue
  c.mention_prob = 0.10;
  c.emit_mentions = false;
  return c;
}

}  // namespace actor
