#ifndef ACTOR_DATA_DATASET_IO_H_
#define ACTOR_DATA_DATASET_IO_H_

#include <string>

#include "data/corpus.h"
#include "util/result.h"
#include "util/status.h"

namespace actor {

/// Writes a corpus as TSV with columns:
///   id \t user_id \t timestamp \t x \t y \t mentions(comma-sep) \t text
/// Text tabs/newlines are replaced by spaces.
Status SaveCorpusTsv(const Corpus& corpus, const std::string& path);

/// Reads a corpus written by SaveCorpusTsv. Returns IOError on missing
/// files and InvalidArgument on malformed rows.
Result<Corpus> LoadCorpusTsv(const std::string& path);

}  // namespace actor

#endif  // ACTOR_DATA_DATASET_IO_H_
