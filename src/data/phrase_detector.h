#ifndef ACTOR_DATA_PHRASE_DETECTOR_H_
#define ACTOR_DATA_PHRASE_DETECTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace actor {

/// Options for score-based bigram phrase merging (word2phrase [43]): two
/// adjacent tokens merge into "a_b" when
///   score(a, b) = (count(a,b) - discount) * N / (count(a) * count(b))
/// exceeds `threshold`. Multiple passes build longer units, which is how
/// multiword venue names ("patrick_molloy_sport_pub") become single
/// textual units in the activity graph (paper §6.4.3).
struct PhraseOptions {
  double threshold = 10.0;
  double discount = 3.0;   // suppresses rare accidental pairs
  int min_count = 3;       // bigrams rarer than this never merge
  int passes = 2;          // 2 passes -> phrases of up to 4 source tokens
};

/// Learns phrase merges from a token-list corpus and applies them.
class PhraseDetector {
 public:
  /// Learns from `documents` (each a token sequence). Returns
  /// InvalidArgument for an empty corpus or non-positive options.
  static Result<PhraseDetector> Learn(
      const std::vector<std::vector<std::string>>& documents,
      const PhraseOptions& options = {});

  /// Rewrites a token sequence, greedily merging learned bigrams left to
  /// right (repeatedly, once per learned pass).
  std::vector<std::string> Apply(std::vector<std::string> tokens) const;

  /// Number of distinct merge rules learned across all passes.
  std::size_t num_phrases() const;

  /// True if "a_b" is a learned merge at any pass.
  bool IsPhrase(const std::string& a, const std::string& b) const;

 private:
  PhraseDetector() = default;

  /// One merge table per pass: key "a\x1fb" -> merged token.
  std::vector<std::unordered_map<std::string, std::string>> passes_;
};

}  // namespace actor

#endif  // ACTOR_DATA_PHRASE_DETECTOR_H_
