#include "data/tokenizer.h"

#include <cctype>

#include "util/string_util.h"

namespace actor {
namespace {

// Standard English stop list (SMART-style subset) plus social-media filler
// the paper's CrossMap pipeline removes.
const char* const kStopwords[] = {
    "a",    "about", "above", "after", "again", "all",   "am",    "an",
    "and",  "any",   "are",   "as",    "at",    "be",    "been",  "before",
    "being", "below", "between", "both", "but",  "by",    "can",   "cannot",
    "could", "did",  "do",    "does",  "doing", "down",  "during", "each",
    "few",  "for",   "from",  "further", "had", "has",   "have",  "having",
    "he",   "her",   "here",  "hers",  "him",   "his",   "how",   "i",
    "if",   "in",    "into",  "is",    "it",    "its",   "just",  "me",
    "more", "most",  "my",    "no",    "nor",   "not",   "now",   "of",
    "off",  "on",    "once",  "only",  "or",    "other", "our",   "ours",
    "out",  "over",  "own",   "same",  "she",   "should", "so",   "some",
    "such", "than",  "that",  "the",   "their", "them",  "then",  "there",
    "these", "they", "this",  "those", "through", "to",  "too",   "under",
    "until", "up",   "very",  "was",   "we",    "were",  "what",  "when",
    "where", "which", "while", "who",  "whom",  "why",   "will",  "with",
    "would", "you",  "your",  "yours", "im",    "rt",    "via",   "amp",
    "gonna", "gotta", "lol",  "u",     "ur",    "dont",  "cant",  "aint",
};

bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#' ||
         c == '@' || c == '\'';
}

bool AllDigits(std::string_view s) {
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {
  if (options_.remove_stopwords) {
    for (const char* w : kStopwords) stopwords_.insert(w);
  }
}

bool Tokenizer::IsStopword(const std::string& word) const {
  return stopwords_.count(word) > 0;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsTokenChar(text[i])) ++i;
    std::size_t start = i;
    while (i < text.size() && IsTokenChar(text[i])) ++i;
    if (i == start) continue;
    std::string tok(text.substr(start, i - start));

    const bool is_mention = !tok.empty() && tok[0] == '@';
    if (is_mention && !options_.keep_mentions) continue;

    // Strip leading '#' from hashtags and apostrophes anywhere.
    std::string cleaned;
    cleaned.reserve(tok.size());
    for (std::size_t k = 0; k < tok.size(); ++k) {
      char c = tok[k];
      if (c == '#' && k == 0) continue;
      if (c == '\'') continue;
      cleaned.push_back(c);
    }
    if (options_.lowercase) cleaned = ToLower(cleaned);

    if (static_cast<int>(cleaned.size()) < options_.min_token_length) continue;
    if (AllDigits(cleaned)) continue;
    if (options_.remove_stopwords && stopwords_.count(cleaned)) continue;
    tokens.push_back(std::move(cleaned));
  }
  return tokens;
}

}  // namespace actor
