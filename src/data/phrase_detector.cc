#include "data/phrase_detector.h"

namespace actor {
namespace {

std::string PairKey(const std::string& a, const std::string& b) {
  std::string key;
  key.reserve(a.size() + b.size() + 1);
  key += a;
  key += '\x1f';
  key += b;
  return key;
}

/// One learning pass: returns the merge table for bigrams above threshold.
std::unordered_map<std::string, std::string> LearnPass(
    const std::vector<std::vector<std::string>>& documents,
    const PhraseOptions& options) {
  std::unordered_map<std::string, int64_t> unigram;
  std::unordered_map<std::string, int64_t> bigram;
  int64_t total = 0;
  for (const auto& doc : documents) {
    for (std::size_t i = 0; i < doc.size(); ++i) {
      ++unigram[doc[i]];
      ++total;
      if (i + 1 < doc.size()) ++bigram[PairKey(doc[i], doc[i + 1])];
    }
  }
  std::unordered_map<std::string, std::string> merges;
  for (const auto& [key, count] : bigram) {
    if (count < options.min_count) continue;
    const std::size_t sep = key.find('\x1f');
    const std::string a = key.substr(0, sep);
    const std::string b = key.substr(sep + 1);
    const double score = (static_cast<double>(count) - options.discount) *
                         static_cast<double>(total) /
                         (static_cast<double>(unigram[a]) *
                          static_cast<double>(unigram[b]));
    if (score > options.threshold) {
      merges.emplace(key, a + "_" + b);
    }
  }
  return merges;
}

std::vector<std::string> ApplyPass(
    const std::unordered_map<std::string, std::string>& merges,
    const std::vector<std::string>& tokens) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  std::size_t i = 0;
  while (i < tokens.size()) {
    if (i + 1 < tokens.size()) {
      auto it = merges.find(PairKey(tokens[i], tokens[i + 1]));
      if (it != merges.end()) {
        out.push_back(it->second);
        i += 2;
        continue;
      }
    }
    out.push_back(tokens[i]);
    ++i;
  }
  return out;
}

}  // namespace

Result<PhraseDetector> PhraseDetector::Learn(
    const std::vector<std::vector<std::string>>& documents,
    const PhraseOptions& options) {
  if (documents.empty()) {
    return Status::InvalidArgument("phrase learning needs documents");
  }
  if (options.threshold <= 0.0 || options.min_count < 1 ||
      options.passes < 1) {
    return Status::InvalidArgument(
        "threshold/min_count/passes must be positive");
  }
  PhraseDetector detector;
  std::vector<std::vector<std::string>> current = documents;
  for (int pass = 0; pass < options.passes; ++pass) {
    auto merges = LearnPass(current, options);
    if (merges.empty()) break;
    for (auto& doc : current) doc = ApplyPass(merges, doc);
    detector.passes_.push_back(std::move(merges));
  }
  return detector;
}

std::vector<std::string> PhraseDetector::Apply(
    std::vector<std::string> tokens) const {
  for (const auto& merges : passes_) {
    tokens = ApplyPass(merges, tokens);
  }
  return tokens;
}

std::size_t PhraseDetector::num_phrases() const {
  std::size_t total = 0;
  for (const auto& merges : passes_) total += merges.size();
  return total;
}

bool PhraseDetector::IsPhrase(const std::string& a,
                              const std::string& b) const {
  const std::string key = PairKey(a, b);
  for (const auto& merges : passes_) {
    if (merges.count(key)) return true;
  }
  return false;
}

}  // namespace actor
