#ifndef ACTOR_DATA_CORPUS_H_
#define ACTOR_DATA_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/phrase_detector.h"
#include "data/record.h"
#include "data/tokenizer.h"
#include "data/vocabulary.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

namespace actor {

/// A corpus of raw mobile-data records R = {r_1, ..., r_N} (paper §3).
class Corpus {
 public:
  Corpus() = default;
  explicit Corpus(std::vector<RawRecord> records)
      : records_(std::move(records)) {}

  void Add(RawRecord record) { records_.push_back(std::move(record)); }

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const RawRecord& record(std::size_t i) const { return records_[i]; }
  const std::vector<RawRecord>& records() const { return records_; }

  /// Number of distinct user ids across authors and mentions.
  std::size_t CountDistinctUsers() const;

  /// Fraction of records with at least one @-mention (the paper reports
  /// 16.8% for UTGEO2011).
  double MentionFraction() const;

 private:
  std::vector<RawRecord> records_;
};

/// Options for the tokenize + prune pipeline producing a TokenizedCorpus.
struct CorpusBuildOptions {
  TokenizerOptions tokenizer;
  /// Words below this corpus frequency are dropped.
  int64_t min_word_count = 2;
  /// Vocabulary cap (paper uses 20,000 for the tweet datasets).
  int32_t max_vocab_size = 20000;
  /// Records left with no surviving keyword are dropped.
  bool drop_empty_records = true;
  /// Merge statistically-cohesive bigrams into single textual units
  /// ("sport pub" -> "sport_pub") before vocabulary construction.
  bool detect_phrases = false;
  PhraseOptions phrase;
};

/// A corpus after tokenization: shared vocabulary + integer word ids.
class TokenizedCorpus {
 public:
  TokenizedCorpus() = default;
  TokenizedCorpus(Vocabulary vocab, std::vector<TokenizedRecord> records)
      : vocab_(std::move(vocab)), records_(std::move(records)) {}

  /// Runs tokenization, builds the vocabulary, prunes rare words, and drops
  /// empty records.
  static Result<TokenizedCorpus> Build(const Corpus& corpus,
                                       const CorpusBuildOptions& options = {});

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const TokenizedRecord& record(std::size_t i) const { return records_[i]; }
  const std::vector<TokenizedRecord>& records() const { return records_; }
  const Vocabulary& vocab() const { return vocab_; }

  std::size_t CountDistinctUsers() const;

 private:
  Vocabulary vocab_;
  std::vector<TokenizedRecord> records_;
};

/// Train / validation / test split by record index.
struct CorpusSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> valid;
  std::vector<std::size_t> test;
};

/// Randomly partitions [0, corpus_size) into train/valid/test of the given
/// sizes (paper §6.1.1: "the train/valid/test split is done randomly").
/// Returns InvalidArgument if the sizes exceed corpus_size; any remainder
/// goes to train.
Result<CorpusSplit> RandomSplit(std::size_t corpus_size,
                                std::size_t valid_size, std::size_t test_size,
                                uint64_t seed);

/// Materializes the subset of `corpus` selected by `indices`.
TokenizedCorpus Subset(const TokenizedCorpus& corpus,
                       const std::vector<std::size_t>& indices);

}  // namespace actor

#endif  // ACTOR_DATA_CORPUS_H_
