#include "data/corpus.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/string_util.h"

namespace actor {

std::size_t Corpus::CountDistinctUsers() const {
  std::unordered_set<int64_t> users;
  for (const auto& r : records_) {
    users.insert(r.user_id);
    users.insert(r.mentioned_user_ids.begin(), r.mentioned_user_ids.end());
  }
  return users.size();
}

double Corpus::MentionFraction() const {
  if (records_.empty()) return 0.0;
  std::size_t with_mentions = 0;
  for (const auto& r : records_) {
    if (!r.mentioned_user_ids.empty()) ++with_mentions;
  }
  return static_cast<double>(with_mentions) /
         static_cast<double>(records_.size());
}

Result<TokenizedCorpus> TokenizedCorpus::Build(
    const Corpus& corpus, const CorpusBuildOptions& options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("cannot tokenize an empty corpus");
  }
  if (options.max_vocab_size <= 0) {
    return Status::InvalidArgument("max_vocab_size must be positive");
  }
  Tokenizer tokenizer(options.tokenizer);

  // Pass 1: tokenize (with optional phrase merging), then count.
  std::vector<std::vector<std::string>> tokenized(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    tokenized[i] = tokenizer.Tokenize(corpus.record(i).text);
  }
  if (options.detect_phrases) {
    ACTOR_ASSIGN_OR_RETURN(PhraseDetector phrases,
                           PhraseDetector::Learn(tokenized, options.phrase));
    for (auto& doc : tokenized) doc = phrases.Apply(std::move(doc));
  }
  Vocabulary full_vocab;
  for (const auto& doc : tokenized) {
    for (const auto& tok : doc) full_vocab.AddOccurrence(tok);
  }
  Vocabulary vocab =
      full_vocab.Prune(options.min_word_count, options.max_vocab_size);

  // Pass 2: map to ids.
  std::vector<TokenizedRecord> records;
  records.reserve(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const RawRecord& raw = corpus.record(i);
    TokenizedRecord rec;
    rec.id = raw.id;
    rec.user_id = raw.user_id;
    rec.timestamp = raw.timestamp;
    rec.location = raw.location;
    rec.mentioned_user_ids = raw.mentioned_user_ids;
    for (const auto& tok : tokenized[i]) {
      const int32_t id = vocab.Lookup(tok);
      if (id >= 0) rec.word_ids.push_back(id);
    }
    if (options.drop_empty_records && rec.word_ids.empty()) continue;
    records.push_back(std::move(rec));
  }
  if (records.empty()) {
    return Status::InvalidArgument(
        "all records were dropped during tokenization; relax the pruning "
        "options");
  }
  return TokenizedCorpus(std::move(vocab), std::move(records));
}

std::size_t TokenizedCorpus::CountDistinctUsers() const {
  std::unordered_set<int64_t> users;
  for (const auto& r : records_) {
    users.insert(r.user_id);
    users.insert(r.mentioned_user_ids.begin(), r.mentioned_user_ids.end());
  }
  return users.size();
}

Result<CorpusSplit> RandomSplit(std::size_t corpus_size,
                                std::size_t valid_size, std::size_t test_size,
                                uint64_t seed) {
  if (valid_size + test_size > corpus_size) {
    return Status::InvalidArgument(StrPrintf(
        "split sizes (%zu + %zu) exceed corpus size %zu", valid_size,
        test_size, corpus_size));
  }
  std::vector<std::size_t> perm(corpus_size);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(seed);
  // Fisher-Yates.
  for (std::size_t i = corpus_size; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Uniform(i)]);
  }
  CorpusSplit split;
  split.test.assign(perm.begin(), perm.begin() + test_size);
  split.valid.assign(perm.begin() + test_size,
                     perm.begin() + test_size + valid_size);
  split.train.assign(perm.begin() + test_size + valid_size, perm.end());
  return split;
}

TokenizedCorpus Subset(const TokenizedCorpus& corpus,
                       const std::vector<std::size_t>& indices) {
  std::vector<TokenizedRecord> records;
  records.reserve(indices.size());
  for (std::size_t i : indices) records.push_back(corpus.record(i));
  // The vocabulary is shared wholesale; ids remain valid.
  Vocabulary vocab = corpus.vocab();
  return TokenizedCorpus(std::move(vocab), std::move(records));
}

}  // namespace actor
