#include "data/record.h"

#include <cmath>

namespace actor {

double Distance(const GeoPoint& a, const GeoPoint& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double HourOfDay(double timestamp) {
  double day_seconds = std::fmod(timestamp, kSecondsPerDay);
  if (day_seconds < 0.0) day_seconds += kSecondsPerDay;
  return day_seconds / 3600.0;
}

double CircularHourDistance(double h1, double h2) {
  double d = std::fabs(h1 - h2);
  d = std::fmod(d, 24.0);
  return d > 12.0 ? 24.0 - d : d;
}

}  // namespace actor
