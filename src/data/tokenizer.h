#ifndef ACTOR_DATA_TOKENIZER_H_
#define ACTOR_DATA_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace actor {

/// Options for text normalization (paper §4.1: "some frequent and
/// meaningless words are removed").
struct TokenizerOptions {
  /// Tokens shorter than this are dropped.
  int min_token_length = 2;
  /// Drop tokens that appear in the built-in English stop list.
  bool remove_stopwords = true;
  /// Lowercase all tokens.
  bool lowercase = true;
  /// Keep "@handle" mention tokens (normally stripped; mentions live in
  /// RawRecord::mentioned_user_ids instead).
  bool keep_mentions = false;
};

/// Splits free text into normalized keyword tokens: lowercases, splits on
/// non-alphanumeric characters (underscore kept so venue keywords like
/// "patrick_molloy_sport_pub" survive as one unit), drops stop words,
/// numbers-only tokens, and short tokens.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  std::vector<std::string> Tokenize(std::string_view text) const;

  /// True if `word` is in the stop list used by this tokenizer.
  bool IsStopword(const std::string& word) const;

 private:
  TokenizerOptions options_;
  std::unordered_set<std::string> stopwords_;
};

}  // namespace actor

#endif  // ACTOR_DATA_TOKENIZER_H_
