#include "data/dataset_io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>

#include "util/string_util.h"

namespace actor {
namespace {

std::string SanitizeText(std::string text) {
  for (char& c : text) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Status SaveCorpusTsv(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  for (const auto& r : corpus.records()) {
    std::vector<std::string> mention_strs;
    mention_strs.reserve(r.mentioned_user_ids.size());
    for (int64_t m : r.mentioned_user_ids) {
      mention_strs.push_back(std::to_string(m));
    }
    out << r.id << '\t' << r.user_id << '\t' << r.timestamp << '\t'
        << r.location.x << '\t' << r.location.y << '\t'
        << Join(mention_strs, ",") << '\t' << SanitizeText(r.text) << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Corpus> LoadCorpusTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  Corpus corpus;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 7) {
      return Status::InvalidArgument(StrPrintf(
          "%s:%zu: expected 7 tab-separated fields, got %zu", path.c_str(),
          line_no, fields.size()));
    }
    RawRecord rec;
    if (!ParseInt64(fields[0], &rec.id) ||
        !ParseInt64(fields[1], &rec.user_id) ||
        !ParseDouble(fields[2], &rec.timestamp) ||
        !ParseDouble(fields[3], &rec.location.x) ||
        !ParseDouble(fields[4], &rec.location.y)) {
      return Status::InvalidArgument(
          StrPrintf("%s:%zu: malformed numeric field", path.c_str(), line_no));
    }
    if (!fields[5].empty()) {
      for (const auto& m : Split(fields[5], ',')) {
        int64_t mention = 0;
        if (!ParseInt64(m, &mention)) {
          return Status::InvalidArgument(
              StrPrintf("%s:%zu: malformed mention id '%s'", path.c_str(),
                        line_no, m.c_str()));
        }
        rec.mentioned_user_ids.push_back(mention);
      }
    }
    rec.text = fields[6];
    corpus.Add(std::move(rec));
  }
  return corpus;
}

}  // namespace actor
