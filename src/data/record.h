#ifndef ACTOR_DATA_RECORD_H_
#define ACTOR_DATA_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace actor {

/// A point in the city plane. Coordinates are kilometres relative to the
/// city origin (planar approximation of lat/lon; all generated corpora are
/// metropolitan scale where this is accurate to metres).
struct GeoPoint {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance between two points, in kilometres.
double Distance(const GeoPoint& a, const GeoPoint& b);

/// One raw mobile-data record r = <t, l, W> plus its author and @-mentions
/// (paper §3 and Definition 2). Timestamps are seconds since the corpus
/// epoch.
struct RawRecord {
  int64_t id = 0;
  int64_t user_id = 0;
  double timestamp = 0.0;
  GeoPoint location;
  std::string text;
  std::vector<int64_t> mentioned_user_ids;
};

/// A record after tokenization: `word_ids` index into a Vocabulary.
struct TokenizedRecord {
  int64_t id = 0;
  int64_t user_id = 0;
  double timestamp = 0.0;
  GeoPoint location;
  std::vector<int32_t> word_ids;
  std::vector<int64_t> mentioned_user_ids;
};

/// Seconds in one day; timestamps mod this give time-of-day.
inline constexpr double kSecondsPerDay = 86400.0;

/// Hour-of-day in [0, 24) for a timestamp.
double HourOfDay(double timestamp);

/// Shortest circular distance between two hours-of-day, in hours (<= 12).
double CircularHourDistance(double h1, double h2);

}  // namespace actor

#endif  // ACTOR_DATA_RECORD_H_
