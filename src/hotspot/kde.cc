#include "hotspot/kde.h"

#include <cmath>

namespace actor {

Result<Kde1d> Kde1d::Create(std::vector<double> samples, double bandwidth,
                            double period) {
  if (samples.empty()) {
    return Status::InvalidArgument("KDE requires at least one sample");
  }
  if (bandwidth <= 0.0) {
    return Status::InvalidArgument("bandwidth must be positive");
  }
  return Kde1d(std::move(samples), bandwidth, period);
}

double Kde1d::Dist(double a, double b) const {
  double d = std::fabs(a - b);
  if (period_ > 0.0) {
    d = std::fmod(d, period_);
    if (d > period_ / 2.0) d = period_ - d;
  }
  return d;
}

double Kde1d::Density(double x) const {
  double acc = 0.0;
  for (double s : samples_) {
    const double u = Dist(x, s) / bandwidth_;
    acc += EpanechnikovProfile(u * u);
  }
  return acc / (static_cast<double>(samples_.size()) * bandwidth_);
}

bool Kde1d::IsLocalMaximum(double x, double step) const {
  const double here = Density(x);
  if (here <= 0.0) return false;  // flat zero regions are not hotspots
  return here >= Density(x - step) && here >= Density(x + step);
}

Result<Kde2d> Kde2d::Create(std::vector<GeoPoint> samples, double bandwidth) {
  if (samples.empty()) {
    return Status::InvalidArgument("KDE requires at least one sample");
  }
  if (bandwidth <= 0.0) {
    return Status::InvalidArgument("bandwidth must be positive");
  }
  return Kde2d(std::move(samples), bandwidth);
}

double Kde2d::Density(const GeoPoint& p) const {
  double acc = 0.0;
  for (const auto& s : samples_) {
    const double dx = (p.x - s.x) / bandwidth_;
    const double dy = (p.y - s.y) / bandwidth_;
    acc += EpanechnikovProfile(dx * dx + dy * dy);
  }
  return acc /
         (static_cast<double>(samples_.size()) * bandwidth_ * bandwidth_);
}

bool Kde2d::IsLocalMaximum(const GeoPoint& p, double step) const {
  const double here = Density(p);
  if (here <= 0.0) return false;  // flat zero regions are not hotspots
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      if (dx == 0 && dy == 0) continue;
      if (Density({p.x + dx * step, p.y + dy * step}) > here) return false;
    }
  }
  return true;
}

}  // namespace actor
