#ifndef ACTOR_HOTSPOT_HOTSPOT_DETECTOR_H_
#define ACTOR_HOTSPOT_HOTSPOT_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "data/corpus.h"
#include "data/record.h"
#include "hotspot/grid_index.h"
#include "hotspot/mean_shift.h"
#include "util/result.h"

namespace actor {

/// Detected spatial hotspots (paper Def. 5): the local maxima of the
/// location KDE, found by mean shift. A new point is assigned to the
/// nearest hotspot (paper §4.3 last paragraph).
class SpatialHotspots {
 public:
  explicit SpatialHotspots(std::vector<GeoPoint> centers)
      : centers_(std::move(centers)), index_(centers_) {}

  std::size_t size() const { return centers_.size(); }
  const GeoPoint& center(int32_t id) const { return centers_[id]; }
  const std::vector<GeoPoint>& centers() const { return centers_; }

  /// Id of the nearest hotspot (grid-indexed); -1 if no hotspots exist.
  int32_t Assign(const GeoPoint& p) const { return index_.Nearest(p); }

 private:
  std::vector<GeoPoint> centers_;
  Grid2dIndex index_;
};

/// Detected temporal hotspots: local maxima of the hour-of-day KDE on the
/// 24-hour circle.
class TemporalHotspots {
 public:
  explicit TemporalHotspots(std::vector<double> hours)
      : hours_(std::move(hours)) {}

  std::size_t size() const { return hours_.size(); }
  double hour(int32_t id) const { return hours_[id]; }
  const std::vector<double>& hours() const { return hours_; }

  /// Id of the circularly-nearest hotspot for a raw timestamp (seconds);
  /// -1 if no hotspots exist.
  int32_t Assign(double timestamp) const;

  /// Id of the circularly-nearest hotspot for an hour-of-day value.
  int32_t AssignHour(double hour) const;

 private:
  std::vector<double> hours_;
};

/// Tuning knobs for hotspot detection on both modalities.
struct HotspotOptions {
  MeanShiftOptions spatial{/*bandwidth=*/1.0, /*merge_radius=*/0.5};
  MeanShiftOptions temporal{/*bandwidth=*/0.75, /*merge_radius=*/0.5};
};

/// Runs spatial mean shift over record locations.
Result<SpatialHotspots> DetectSpatialHotspots(
    const std::vector<GeoPoint>& locations, const MeanShiftOptions& options);

/// Runs circular temporal mean shift over record hours-of-day.
Result<TemporalHotspots> DetectTemporalHotspots(
    const std::vector<double>& timestamps, const MeanShiftOptions& options);

/// Convenience bundle: both hotspot sets for a corpus.
struct Hotspots {
  SpatialHotspots spatial{{}};
  TemporalHotspots temporal{{}};
};

/// Detects both hotspot families from a tokenized corpus (Algorithm 1,
/// line 1).
Result<Hotspots> DetectHotspots(const TokenizedCorpus& corpus,
                                const HotspotOptions& options = {});

}  // namespace actor

#endif  // ACTOR_HOTSPOT_HOTSPOT_DETECTOR_H_
