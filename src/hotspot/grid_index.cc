#include "hotspot/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace actor {

Grid2dIndex::Grid2dIndex(std::vector<GeoPoint> points, double cell_size)
    : points_(std::move(points)) {
  if (points_.empty()) return;
  if (cell_size > 0.0) {
    cell_ = cell_size;
  } else {
    double min_x = points_[0].x, max_x = points_[0].x;
    double min_y = points_[0].y, max_y = points_[0].y;
    for (const auto& p : points_) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
    const double span = std::max(max_x - min_x, max_y - min_y);
    // A degenerate span (all points coincident) must not create a
    // micro-cell grid: ring expansion from a distant query would walk an
    // astronomical number of empty rings.
    cell_ = span > 0.0
                ? span / std::sqrt(static_cast<double>(points_.size()) + 1.0)
                : 1.0;
  }
  min_ix_ = max_ix_ = CellIndex(points_[0].x);
  min_iy_ = max_iy_ = CellIndex(points_[0].y);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const int ix = CellIndex(points_[i].x);
    const int iy = CellIndex(points_[i].y);
    min_ix_ = std::min(min_ix_, ix);
    max_ix_ = std::max(max_ix_, ix);
    min_iy_ = std::min(min_iy_, iy);
    max_iy_ = std::max(max_iy_, iy);
    cells_[CellKey(ix, iy)].push_back(static_cast<int32_t>(i));
  }
}

int Grid2dIndex::CellIndex(double v) const {
  // Clamp so extreme queries relative to the cell size cannot overflow
  // the int index (they just land in the outermost ring).
  const double idx =
      std::clamp(std::floor(v / cell_), -1.0e9, 1.0e9);
  return static_cast<int>(idx);
}

int32_t Grid2dIndex::Nearest(const GeoPoint& query) const {
  if (points_.empty()) return -1;
  const int cx = CellIndex(query.x);
  const int cy = CellIndex(query.y);
  int32_t best = -1;
  double best_dist = std::numeric_limits<double>::infinity();

  auto visit_cell = [&](int ix, int iy) {
    auto it = cells_.find(CellKey(ix, iy));
    if (it == cells_.end()) return;
    for (int32_t i : it->second) {
      const double d = Distance(query, points_[i]);
      if (d < best_dist || (d == best_dist && i < best)) {
        best_dist = d;
        best = i;
      }
    }
  };

  // Expand rings until the closest possible point in the next ring cannot
  // beat the best found. Ring r's nearest possible distance is
  // (r - 1) * cell (the query can sit anywhere inside its own cell). The
  // outer bound covers every occupied cell from any query position.
  const int max_ring =
      std::max({std::abs(cx - min_ix_), std::abs(cx - max_ix_),
                std::abs(cy - min_iy_), std::abs(cy - max_iy_)}) +
      1;
  // Rings that cannot touch the occupied bounding box are empty; jump
  // straight to the first ring that can (distant queries would otherwise
  // walk a long run of empty rings).
  const int jump_x = std::max({0, min_ix_ - cx, cx - max_ix_});
  const int jump_y = std::max({0, min_iy_ - cy, cy - max_iy_});
  const int first_ring = std::max(jump_x, jump_y);
  for (int r = first_ring; r <= max_ring; ++r) {
    if (best >= 0 &&
        static_cast<double>(r - 1) * cell_ > best_dist) {
      break;
    }
    if (r == 0) {
      visit_cell(cx, cy);
      continue;
    }
    for (int ix = cx - r; ix <= cx + r; ++ix) {
      visit_cell(ix, cy - r);
      visit_cell(ix, cy + r);
    }
    for (int iy = cy - r + 1; iy <= cy + r - 1; ++iy) {
      visit_cell(cx - r, iy);
      visit_cell(cx + r, iy);
    }
  }
  return best;
}

}  // namespace actor
