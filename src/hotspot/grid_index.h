#ifndef ACTOR_HOTSPOT_GRID_INDEX_H_
#define ACTOR_HOTSPOT_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/record.h"

namespace actor {

/// Uniform-grid nearest-neighbor index over a fixed point set. Queries
/// expand cell rings outward from the query's cell until no closer point
/// can exist. The paper-scale datasets have ~10k spatial hotspots and
/// ~10^6 assignment queries, where the brute-force scan in
/// SpatialHotspots::Assign dominates preprocessing time; this index makes
/// assignment ~O(1) for well-spread hotspots. Ties break toward the
/// smallest point index (matching the brute-force scan).
class Grid2dIndex {
 public:
  /// `cell_size` <= 0 picks span / sqrt(n) automatically.
  explicit Grid2dIndex(std::vector<GeoPoint> points, double cell_size = 0.0);

  /// Index of the nearest point, or -1 when the set is empty.
  int32_t Nearest(const GeoPoint& query) const;

  std::size_t size() const { return points_.size(); }

 private:
  int64_t CellKey(int ix, int iy) const {
    return (static_cast<int64_t>(ix) << 32) ^
           (static_cast<int64_t>(iy) & 0xffffffffLL);
  }
  int CellIndex(double v) const;

  std::vector<GeoPoint> points_;
  double cell_ = 1.0;
  std::unordered_map<int64_t, std::vector<int32_t>> cells_;
  int min_ix_ = 0, max_ix_ = 0, min_iy_ = 0, max_iy_ = 0;
};

}  // namespace actor

#endif  // ACTOR_HOTSPOT_GRID_INDEX_H_
