#ifndef ACTOR_HOTSPOT_KDE_H_
#define ACTOR_HOTSPOT_KDE_H_

#include <vector>

#include "data/record.h"
#include "util/result.h"

namespace actor {

/// Epanechnikov kernel profile K(u) ∝ (1 - |u|^2) for |u| <= 1, else 0
/// (paper §4.3, [41]). `u2` is the *squared* normalized distance.
inline double EpanechnikovProfile(double u2) {
  return u2 <= 1.0 ? 1.0 - u2 : 0.0;
}

/// Kernel density estimator over 1-D samples with an optional circular
/// domain (used for hour-of-day, period 24). Implements
///   f(x) = 1/(n h^d) * sum_i K((x - x_i) / h)
/// with the Epanechnikov kernel.
class Kde1d {
 public:
  /// `period` <= 0 means a linear domain; otherwise distances wrap.
  static Result<Kde1d> Create(std::vector<double> samples, double bandwidth,
                              double period = 0.0);

  double Density(double x) const;

  /// True if x is a local maximum of the density at resolution `step`
  /// (density at x >= density at x ± step).
  bool IsLocalMaximum(double x, double step) const;

  double bandwidth() const { return bandwidth_; }

 private:
  Kde1d(std::vector<double> samples, double bandwidth, double period)
      : samples_(std::move(samples)), bandwidth_(bandwidth), period_(period) {}

  double Dist(double a, double b) const;

  std::vector<double> samples_;
  double bandwidth_;
  double period_;
};

/// Kernel density estimator over 2-D points (Epanechnikov kernel).
class Kde2d {
 public:
  static Result<Kde2d> Create(std::vector<GeoPoint> samples, double bandwidth);

  double Density(const GeoPoint& p) const;

  /// True if p is a local density maximum versus 8 neighbours at `step`.
  bool IsLocalMaximum(const GeoPoint& p, double step) const;

  double bandwidth() const { return bandwidth_; }

 private:
  Kde2d(std::vector<GeoPoint> samples, double bandwidth)
      : samples_(std::move(samples)), bandwidth_(bandwidth) {}

  std::vector<GeoPoint> samples_;
  double bandwidth_;
};

}  // namespace actor

#endif  // ACTOR_HOTSPOT_KDE_H_
