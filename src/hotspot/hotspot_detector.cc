#include "hotspot/hotspot_detector.h"

#include <cmath>
#include <limits>

namespace actor {

int32_t TemporalHotspots::AssignHour(double hour) const {
  int32_t best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < hours_.size(); ++i) {
    const double d = CircularHourDistance(hour, hours_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int32_t>(i);
    }
  }
  return best;
}

int32_t TemporalHotspots::Assign(double timestamp) const {
  return AssignHour(HourOfDay(timestamp));
}

Result<SpatialHotspots> DetectSpatialHotspots(
    const std::vector<GeoPoint>& locations, const MeanShiftOptions& options) {
  ACTOR_ASSIGN_OR_RETURN(std::vector<GeoPoint> modes,
                         MeanShiftModes2d(locations, options));
  return SpatialHotspots(std::move(modes));
}

Result<TemporalHotspots> DetectTemporalHotspots(
    const std::vector<double>& timestamps, const MeanShiftOptions& options) {
  std::vector<double> hours;
  hours.reserve(timestamps.size());
  for (double t : timestamps) hours.push_back(HourOfDay(t));
  ACTOR_ASSIGN_OR_RETURN(std::vector<double> modes,
                         MeanShiftModes1dCircular(hours, 24.0, options));
  return TemporalHotspots(std::move(modes));
}

Result<Hotspots> DetectHotspots(const TokenizedCorpus& corpus,
                                const HotspotOptions& options) {
  std::vector<GeoPoint> locations;
  std::vector<double> timestamps;
  locations.reserve(corpus.size());
  timestamps.reserve(corpus.size());
  for (const auto& r : corpus.records()) {
    locations.push_back(r.location);
    timestamps.push_back(r.timestamp);
  }
  Hotspots out;
  ACTOR_ASSIGN_OR_RETURN(out.spatial,
                         DetectSpatialHotspots(locations, options.spatial));
  ACTOR_ASSIGN_OR_RETURN(out.temporal,
                         DetectTemporalHotspots(timestamps, options.temporal));
  return out;
}

}  // namespace actor
