#include "hotspot/mean_shift.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace actor {
namespace {

Status ValidateOptions(const MeanShiftOptions& options) {
  if (options.bandwidth <= 0.0) {
    return Status::InvalidArgument("mean-shift bandwidth must be positive");
  }
  if (options.merge_radius < 0.0) {
    return Status::InvalidArgument("merge radius must be non-negative");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  return Status::OK();
}

/// Uniform grid over 2-D points with cell size == bandwidth, so a radius-h
/// window is covered by the 3x3 cell neighbourhood.
class PointGrid {
 public:
  PointGrid(const std::vector<GeoPoint>& points, double cell)
      : points_(points), cell_(cell) {
    // cell == bandwidth; a zero/NaN cell would fold every point into one
    // bucket (or scatter them across int-overflowed keys) without any
    // visible error.
    ACTOR_DCHECK(cell > 0.0) << "grid cell size " << cell;
    ACTOR_DCHECK_FINITE(cell);
    cells_.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      cells_[Key(points[i])].push_back(i);
    }
  }

  /// Calls fn(point) for every point within `radius` of `center`.
  template <typename Fn>
  void ForEachInRadius(const GeoPoint& center, double radius, Fn&& fn) const {
    const int span = static_cast<int>(std::ceil(radius / cell_));
    const int cx = CellIndex(center.x);
    const int cy = CellIndex(center.y);
    const double r2 = radius * radius;
    for (int ix = cx - span; ix <= cx + span; ++ix) {
      for (int iy = cy - span; iy <= cy + span; ++iy) {
        auto it = cells_.find(Pack(ix, iy));
        if (it == cells_.end()) continue;
        for (std::size_t i : it->second) {
          const double dx = points_[i].x - center.x;
          const double dy = points_[i].y - center.y;
          if (dx * dx + dy * dy <= r2) fn(points_[i]);
        }
      }
    }
  }

 private:
  int CellIndex(double v) const {
    return static_cast<int>(std::floor(v / cell_));
  }
  int64_t Pack(int ix, int iy) const {
    return (static_cast<int64_t>(ix) << 32) ^
           (static_cast<int64_t>(iy) & 0xffffffffLL);
  }
  int64_t Key(const GeoPoint& p) const {
    return Pack(CellIndex(p.x), CellIndex(p.y));
  }

  const std::vector<GeoPoint>& points_;
  double cell_;
  std::unordered_map<int64_t, std::vector<std::size_t>> cells_;
};

}  // namespace

Result<std::vector<GeoPoint>> MeanShiftModes2d(
    const std::vector<GeoPoint>& points, const MeanShiftOptions& options) {
  ACTOR_RETURN_NOT_OK(ValidateOptions(options));
  if (points.empty()) {
    return Status::InvalidArgument("mean shift requires at least one point");
  }
  const double h = options.bandwidth;
  PointGrid grid(points, h);

  // Deduplicate starting points onto a coarse seed grid: every occupied
  // seed cell contributes its centroid as one trajectory start. This keeps
  // the algorithm equivalent to starting from every data point (each point
  // converges to the mode its seed cell converges to) at near-linear cost.
  const double seed_cell =
      options.seed_grid_cell > 0.0 ? options.seed_grid_cell : h / 2.0;
  struct SeedAccum {
    double sx = 0.0, sy = 0.0;
    std::size_t n = 0;
  };
  std::unordered_map<int64_t, SeedAccum> seed_cells;
  for (const auto& p : points) {
    const int ix = static_cast<int>(std::floor(p.x / seed_cell));
    const int iy = static_cast<int>(std::floor(p.y / seed_cell));
    auto& acc = seed_cells[(static_cast<int64_t>(ix) << 32) ^
                           (static_cast<int64_t>(iy) & 0xffffffffLL)];
    acc.sx += p.x;
    acc.sy += p.y;
    ++acc.n;
  }

  struct Mode {
    GeoPoint center;
    std::size_t support;
  };
  auto window_count_at = [&](const GeoPoint& p) {
    std::size_t m = 0;
    grid.ForEachInRadius(p, h, [&](const GeoPoint&) { ++m; });
    return m;
  };

  // Materialize the seeds in a deterministic order so both the serial and
  // the multi-threaded paths merge identically.
  std::vector<std::pair<int64_t, SeedAccum>> seeds(seed_cells.begin(),
                                                   seed_cells.end());
  std::sort(seeds.begin(), seeds.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // One independent trajectory per seed. Flat-window mean shift can stall
  // on saddle/outlier fixed points of the shadow (Epanechnikov) density;
  // after convergence we probe the 8-neighborhood by window support and
  // restart uphill if any probe is clearly denser.
  auto run_trajectory = [&](const SeedAccum& acc) -> Mode {
    GeoPoint y{acc.sx / acc.n, acc.sy / acc.n};
    std::size_t window_count = 0;
    for (int restart = 0; restart < 4; ++restart) {
      for (int iter = 0; iter < options.max_iterations; ++iter) {
        double sx = 0.0, sy = 0.0;
        std::size_t m = 0;
        grid.ForEachInRadius(y, h, [&](const GeoPoint& p) {
          sx += p.x;
          sy += p.y;
          ++m;
        });
        if (m == 0) break;  // isolated seed; keep current position
        const GeoPoint next{sx / m, sy / m};
        const double shift = Distance(next, y);
        y = next;
        window_count = m;
        if (shift < options.convergence_tol) break;
      }
      if (window_count == 0) break;
      // Uphill probe.
      GeoPoint best = y;
      std::size_t best_count = window_count;
      const double step = h / 2.0;
      for (int dx = -1; dx <= 1; ++dx) {
        for (int dy = -1; dy <= 1; ++dy) {
          if (dx == 0 && dy == 0) continue;
          const GeoPoint probe{y.x + dx * step, y.y + dy * step};
          const std::size_t c = window_count_at(probe);
          if (c > best_count) {
            best_count = c;
            best = probe;
          }
        }
      }
      if (best_count <= window_count) break;  // genuine mode
      y = best;
    }
    return {y, window_count};
  };

  std::vector<Mode> trajectories(seeds.size());
  if (options.num_threads > 1) {
    ThreadPool pool(options.num_threads);
    pool.ParallelFor(0, seeds.size(), [&](std::size_t i) {
      trajectories[i] = run_trajectory(seeds[i].second);
    });
  } else {
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      trajectories[i] = run_trajectory(seeds[i].second);
    }
  }

  // Sequential merge in seed order (order-dependent, hence not parallel).
  std::vector<Mode> modes;
  for (const Mode& t : trajectories) {
    if (t.support == 0) continue;
    bool merged = false;
    for (auto& mode : modes) {
      if (Distance(mode.center, t.center) <= options.merge_radius) {
        if (t.support > mode.support) {
          mode.center = t.center;
          mode.support = t.support;
        }
        merged = true;
        break;
      }
    }
    if (!merged) modes.push_back(t);
  }

  std::sort(modes.begin(), modes.end(),
            [](const Mode& a, const Mode& b) { return a.support > b.support; });
  std::vector<GeoPoint> out;
  out.reserve(modes.size());
  for (const auto& m : modes) out.push_back(m.center);
  return out;
}

Result<std::vector<double>> MeanShiftModes1dCircular(
    const std::vector<double>& values, double period,
    const MeanShiftOptions& options) {
  ACTOR_RETURN_NOT_OK(ValidateOptions(options));
  if (values.empty()) {
    return Status::InvalidArgument("mean shift requires at least one point");
  }
  if (period <= 0.0) {
    return Status::InvalidArgument("period must be positive");
  }
  const double h = options.bandwidth;
  const double two_pi = 2.0 * std::numbers::pi;

  auto wrap = [&](double v) {
    v = std::fmod(v, period);
    if (v < 0.0) v += period;
    // fmod can return exactly `period` when v is a tiny negative number
    // (v + period rounds up); clamp so downstream binning stays in range.
    if (v >= period) v = 0.0;
    ACTOR_DCHECK(v >= 0.0 && v < period)
        << "circular wrap of " << v << " escaped [0, " << period << ")";
    return v;
  };
  auto circ_dist = [&](double a, double b) {
    double d = std::fabs(a - b);
    d = std::fmod(d, period);
    d = d > period / 2.0 ? period - d : d;
    ACTOR_DCHECK(d >= 0.0 && d <= period / 2.0)
        << "circular distance " << d << " for period " << period;
    return d;
  };

  // Seeds from occupied histogram bins.
  const double seed_cell =
      options.seed_grid_cell > 0.0 ? options.seed_grid_cell : h / 2.0;
  const int n_bins =
      std::max(1, static_cast<int>(std::ceil(period / seed_cell)));
  std::vector<double> bin_sum(n_bins, 0.0);
  std::vector<std::size_t> bin_count(n_bins, 0);
  std::vector<double> wrapped;
  wrapped.reserve(values.size());
  for (double v : values) {
    const double w = wrap(v);
    wrapped.push_back(w);
    const int b = std::min(n_bins - 1, static_cast<int>(w / seed_cell));
    bin_sum[b] += w;
    ++bin_count[b];
  }

  struct Mode {
    double center;
    std::size_t support;
  };
  std::vector<Mode> modes;
  for (int b = 0; b < n_bins; ++b) {
    if (bin_count[b] == 0) continue;
    double y = bin_sum[b] / static_cast<double>(bin_count[b]);
    std::size_t window_count = 0;
    for (int iter = 0; iter < options.max_iterations; ++iter) {
      // Circular mean of window members via the angular mean.
      double sin_sum = 0.0, cos_sum = 0.0;
      std::size_t m = 0;
      for (double v : wrapped) {
        if (circ_dist(v, y) <= h) {
          const double theta = two_pi * v / period;
          sin_sum += std::sin(theta);
          cos_sum += std::cos(theta);
          ++m;
        }
      }
      if (m == 0) break;
      double next = wrap(std::atan2(sin_sum, cos_sum) / two_pi * period);
      const double shift = circ_dist(next, y);
      y = next;
      window_count = m;
      if (shift < options.convergence_tol) break;
    }
    if (window_count == 0) continue;

    bool merged = false;
    for (auto& mode : modes) {
      if (circ_dist(mode.center, y) <= options.merge_radius) {
        if (window_count > mode.support) {
          mode.center = y;
          mode.support = window_count;
        }
        merged = true;
        break;
      }
    }
    if (!merged) modes.push_back({y, window_count});
  }

  std::sort(modes.begin(), modes.end(),
            [](const Mode& a, const Mode& b) { return a.support > b.support; });
  std::vector<double> out;
  out.reserve(modes.size());
  for (const auto& m : modes) out.push_back(m.center);
  return out;
}

}  // namespace actor
