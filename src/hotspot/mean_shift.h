#ifndef ACTOR_HOTSPOT_MEAN_SHIFT_H_
#define ACTOR_HOTSPOT_MEAN_SHIFT_H_

#include <vector>

#include "data/record.h"
#include "util/result.h"

namespace actor {

/// Options for flat-window mean shift (paper §4.3, Eq. (1):
/// y^{k+1} = mean of the points inside the window around y^k).
struct MeanShiftOptions {
  /// Window radius (km for spatial, hours for temporal).
  double bandwidth = 1.0;
  /// Converged trajectories closer than this are merged into one mode.
  double merge_radius = 0.5;
  int max_iterations = 100;
  /// Stop when the shift is smaller than this.
  double convergence_tol = 1e-4;
  /// Starting points are deduplicated onto a grid of this cell size to keep
  /// the cost near-linear; <= 0 derives it from the bandwidth.
  double seed_grid_cell = 0.0;
  /// Trajectories are independent and run on this many threads; the mode
  /// merge is sequential, so results are identical for any thread count.
  int num_threads = 1;
};

/// Mean-shift mode finding over 2-D points. Uses a uniform grid index so a
/// window query touches only nearby cells. Returns modes sorted by their
/// support (number of points in the final window), descending.
Result<std::vector<GeoPoint>> MeanShiftModes2d(
    const std::vector<GeoPoint>& points, const MeanShiftOptions& options);

/// Mean-shift mode finding over 1-D circular data with the given period
/// (hour-of-day: period 24). The circular mean inside the window is computed
/// via the angular mean so the wrap-around seam is handled correctly.
/// Returns modes in [0, period), sorted by support descending.
Result<std::vector<double>> MeanShiftModes1dCircular(
    const std::vector<double>& values, double period,
    const MeanShiftOptions& options);

}  // namespace actor

#endif  // ACTOR_HOTSPOT_MEAN_SHIFT_H_
