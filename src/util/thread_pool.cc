#include "util/thread_pool.h"

#include <algorithm>

namespace actor {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  ShardedRange(begin, end,
               [&fn](int /*shard*/, std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) fn(i);
               });
}

void ThreadPool::ShardedRange(
    std::size_t begin, std::size_t end,
    const std::function<void(int, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, num_threads());
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    Submit([c, lo, hi, &fn] { fn(static_cast<int>(c), lo, hi); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace actor
