#ifndef ACTOR_UTIL_RESULT_H_
#define ACTOR_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace actor {

/// A value-or-error type: holds either a T or a non-OK Status.
/// Mirrors arrow::Result. Accessing the value of an errored Result aborts,
/// so callers must test ok() (or use ACTOR_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` from functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Constructing from an OK status is a
  /// programming error and yields an Internal error instead.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  /// The contained value. Aborts if this Result holds an error.
  T& ValueOrDie() {
    if (!ok()) status_.CheckOK();
    return *value_;
  }
  const T& ValueOrDie() const {
    if (!ok()) status_.CheckOK();
    return *value_;
  }

  /// Moves the contained value out. Aborts if this Result holds an error.
  T MoveValueOrDie() {
    if (!ok()) status_.CheckOK();
    return std::move(*value_);
  }

  /// Moves the contained value out, debug-checked only. For callers on the
  /// serving hot path that have already established ok() (e.g. the
  /// scatter-gather engine unwrapping per-shard results it validated
  /// up front): the checked accessors route through Status::CheckOK, whose
  /// failure path performs IO — banned on non-blocking paths (R10).
  T MoveValueUnchecked() {
    ACTOR_DCHECK(ok()) << status().message();
    return std::move(*value_);
  }

  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T& operator*() { return ValueOrDie(); }
  const T& operator*() const { return ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace actor

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status to the caller.
#define ACTOR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = tmp.MoveValueOrDie();

#define ACTOR_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define ACTOR_ASSIGN_OR_RETURN_NAME(a, b) ACTOR_ASSIGN_OR_RETURN_CAT(a, b)

#define ACTOR_ASSIGN_OR_RETURN(lhs, rexpr) \
  ACTOR_ASSIGN_OR_RETURN_IMPL(             \
      ACTOR_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, rexpr)

#endif  // ACTOR_UTIL_RESULT_H_
