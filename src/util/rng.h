#ifndef ACTOR_UTIL_RNG_H_
#define ACTOR_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <numbers>

namespace actor {

/// SplitMix64 finalizer: a bijective avalanche mix of the full 64-bit
/// input. The standard way to derive uncorrelated PRNG seeds from
/// structured inputs (base seed, shard index, epoch): additive or
/// multiplicative schemes like `seed + C * shard` leave nearby shards with
/// correlated xoshiro streams, while one SplitMix64 round flips ~half the
/// output bits per input bit.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Fast, reproducible 64-bit PRNG (xoshiro256**). Each trainer thread owns
/// its own instance, seeded deterministically, so multi-threaded runs are
/// replayable modulo HOGWILD write races.
class Rng {
 public:
  /// Seeds via SplitMix64 so that nearby seeds give uncorrelated streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      s = SplitMix64(x);
      x += 0x9e3779b97f4a7c15ULL;
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float UniformFloat() {
    return static_cast<float>(Next() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [lo, hi).
  double UniformRange(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Standard normal via Box-Muller.
  double Gaussian() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Normal with the given mean / standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard exponential draw (rate 1).
  double Exponential() {
    double u = UniformDouble();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace actor

#endif  // ACTOR_UTIL_RNG_H_
