#ifndef ACTOR_UTIL_THREAD_POOL_H_
#define ACTOR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace actor {

/// Fixed-size worker pool. Tasks are arbitrary closures; Wait() blocks until
/// the queue drains and all in-flight tasks finish.
///
/// The pool is designed to be created once and threaded through an entire
/// training run (TrainActor hands one instance to the LINE pre-trainer, the
/// edge-sampling trainer, and the record loop), so the hot path pays one
/// spawn/join cycle per run instead of one per TrainEdgeType call.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for execution. Safe from any thread.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Runs fn(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool, and waits for completion. fn must be safe to call
  /// concurrently on disjoint indices.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

  /// Splits [begin, end) into one near-equal contiguous chunk per worker
  /// and runs fn(shard, lo, hi) for each on the pool, then waits. Shard ids
  /// are dense in [0, chunks) so callers can derive per-shard RNG seeds.
  /// When the range has fewer items than workers, only `end - begin` shards
  /// run; an empty range runs nothing. fn must be safe to call concurrently
  /// on disjoint ranges (the HOGWILD trainers rely on exactly that).
  void ShardedRange(
      std::size_t begin, std::size_t end,
      const std::function<void(int, std::size_t, std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signals workers
  std::condition_variable done_cv_;   // signals Wait()
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace actor

#endif  // ACTOR_UTIL_THREAD_POOL_H_
