#ifndef ACTOR_UTIL_THREAD_POOL_H_
#define ACTOR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace actor {

/// Fixed-size worker pool. Tasks are arbitrary closures; Wait() blocks until
/// the queue drains and all in-flight tasks finish.
///
/// The pool is designed to be created once and threaded through an entire
/// training run (TrainActor hands one instance to the LINE pre-trainer, the
/// edge-sampling trainer, and the record loop; OnlineActor borrows one the
/// same way via OnlineActorOptions::pool), so the hot path pays one
/// spawn/join cycle per run instead of one per TrainEdgeType call.
///
/// Synchronization contract: Submit() publishes the closure's captured
/// state to the executing worker, and Wait()/ParallelFor()/ShardedRange()
/// returning establishes happens-before from everything the tasks wrote
/// back to the caller (mutex + condition variable internally). The HOGWILD
/// trainers rely on exactly this: shared embedding rows are updated
/// race-fully *during* a sharded call (through the relaxed-auditable
/// kernels of util/vec_math.h, see DESIGN.md §7), but the batch boundary
/// itself is a clean synchronization point.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for execution. Safe to call from any thread,
  /// including from inside a running task (but a task must never Wait()
  /// on the pool executing it — that deadlocks on a saturated queue).
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed (queue drained and
  /// no task in flight). Only call from threads outside the pool.
  void Wait();

  /// Runs fn(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool, and waits for completion. fn must be safe to call
  /// concurrently on disjoint indices.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

  /// Splits [begin, end) into one near-equal contiguous chunk per worker
  /// and runs fn(shard, lo, hi) for each on the pool, then waits. Shard ids
  /// are dense in [0, chunks) so callers can derive uncorrelated per-shard
  /// RNG streams (the ShardSeed() SplitMix64 chain in embedding/sgd.h is
  /// the canonical recipe, used by both EdgeSamplingTrainer and
  /// OnlineActor). When the range has fewer items than workers, only
  /// `end - begin` shards run; an empty range runs nothing. fn must be
  /// safe to call concurrently on disjoint ranges (the HOGWILD trainers
  /// rely on exactly that).
  void ShardedRange(
      std::size_t begin, std::size_t end,
      const std::function<void(int, std::size_t, std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signals workers
  std::condition_variable done_cv_;   // signals Wait()
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace actor

#endif  // ACTOR_UTIL_THREAD_POOL_H_
