#ifndef ACTOR_UTIL_STOPWATCH_H_
#define ACTOR_UTIL_STOPWATCH_H_

#include <chrono>

namespace actor {

/// Wall-clock stopwatch for harness timing. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace actor

#endif  // ACTOR_UTIL_STOPWATCH_H_
