#ifndef ACTOR_UTIL_VEC_MATH_H_
#define ACTOR_UTIL_VEC_MATH_H_

#include <cmath>
#include <cstddef>

namespace actor {

/// Dense float vector kernels used by the embedding trainers. All functions
/// operate on raw pointers so they can address rows of an EmbeddingMatrix
/// without copies. Written as simple loops that GCC/Clang auto-vectorize.

/// Returns the dot product of x and y (length n).
float Dot(const float* x, const float* y, std::size_t n);

/// y += a * x (length n).
void Axpy(float a, const float* x, float* y, std::size_t n);

/// x *= a (length n).
void Scale(float a, float* x, std::size_t n);

/// out = x (length n).
void Copy(const float* x, float* out, std::size_t n);

/// out += x (length n).
void Add(const float* x, float* out, std::size_t n);

/// Sets x to all zeros (length n).
void Zero(float* x, std::size_t n);

/// Returns the L2 norm of x (length n).
float Norm2(const float* x, std::size_t n);

/// Normalizes x to unit L2 norm in place. A zero vector is left unchanged.
void NormalizeInPlace(float* x, std::size_t n);

/// Cosine similarity; 0 when either vector is all-zero.
float Cosine(const float* x, const float* y, std::size_t n);

/// Numerically-stable logistic sigmoid.
inline float Sigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

/// Piecewise-linear table-driven sigmoid, clamped to [-kSigmoidBound,
/// kSigmoidBound] as in word2vec/LINE reference implementations. Roughly 4x
/// faster than Sigmoid() inside the SGD inner loop.
class SigmoidTable {
 public:
  SigmoidTable();
  float operator()(float x) const {
    if (x >= kBound) return 1.0f;
    if (x <= -kBound) return 0.0f;
    const float pos = (x + kBound) * kScale;
    const int idx = static_cast<int>(pos);
    const float frac = pos - static_cast<float>(idx);
    return table_[idx] * (1.0f - frac) + table_[idx + 1] * frac;
  }

  static constexpr float kBound = 8.0f;

 private:
  static constexpr int kTableSize = 1024;
  static constexpr float kScale = kTableSize / (2.0f * kBound);
  float table_[kTableSize + 2];
};

}  // namespace actor

#endif  // ACTOR_UTIL_VEC_MATH_H_
