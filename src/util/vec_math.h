#ifndef ACTOR_UTIL_VEC_MATH_H_
#define ACTOR_UTIL_VEC_MATH_H_

#include <atomic>
#include <cmath>
#include <cstddef>

namespace actor {

/// Dense float vector kernels used by the embedding trainers. All functions
/// operate on raw pointers so they can address rows of an EmbeddingMatrix
/// without copies.
///
/// Two implementations exist for every hot kernel: a portable scalar loop
/// (namespace `scalar`, also the reference for parity tests) and an
/// AVX2+FMA version selected at runtime. The top-level functions dispatch
/// through function pointers initialized before main() from CPUID, so a
/// single binary runs the fastest kernels the machine supports and falls
/// back to the scalar loops everywhere else.

/// Which kernel family the top-level functions currently dispatch to.
/// kRelaxed is the TSan-annotated scalar family (see relaxed:: below); in a
/// ACTOR_TSAN build it replaces both other backends so every shared-row
/// access is visible to ThreadSanitizer as an intentional relaxed atomic.
enum class VecBackend { kScalar, kRelaxed, kAvx2 };

/// True when the running CPU supports the AVX2+FMA kernels.
bool Avx2Available();

/// Backend the dispatched kernels currently use. Defaults to the fastest
/// available backend.
VecBackend ActiveVecBackend();

/// Forces the dispatched kernels onto `backend` (used by benchmarks and
/// parity tests). Requests for an unavailable backend fall back to scalar.
/// Returns the backend actually installed. Not safe to call while trainer
/// threads are running.
VecBackend SetVecBackend(VecBackend backend);

/// Stable lowercase name for a backend ("scalar", "relaxed", "avx2") —
/// the spelling used in BENCH_sgd.json rows and bench output.
const char* VecBackendName(VecBackend backend);

/// Returns the dot product of x and y (length n).
float Dot(const float* x, const float* y, std::size_t n);

/// y += a * x (length n).
void Axpy(float a, const float* x, float* y, std::size_t n);

/// x *= a (length n).
void Scale(float a, float* x, std::size_t n);

/// out = x (length n).
void Copy(const float* x, float* out, std::size_t n);

/// out += x (length n).
void Add(const float* x, float* out, std::size_t n);

/// Sets x to all zeros (length n).
void Zero(float* x, std::size_t n);

/// Returns the L2 norm of x (length n).
float Norm2(const float* x, std::size_t n);

/// Normalizes x to unit L2 norm in place. A zero vector is left unchanged.
void NormalizeInPlace(float* x, std::size_t n);

/// Cosine similarity; 0 when either vector is all-zero.
float Cosine(const float* x, const float* y, std::size_t n);

/// Fused one-query-vs-row scoring pass: in a single sweep over y,
///   *dot     = Dot(x, y, n)
///   *y_norm2 = Dot(y, y, n)   (the *squared* L2 norm of y)
/// Each accumulator chain runs the exact reduction order of the separate
/// Dot() calls in the same backend, so dot / (Norm2(x) * sqrt(y_norm2)) is
/// bit-identical to Cosine(x, y, n) — which is how QueryEngine hoists the
/// query norm out of its top-k loop without changing a single result bit.
void DotAndNorm2(const float* x, const float* y, std::size_t n, float* dot,
                 float* y_norm2);

/// Blocked many-queries-vs-one-row scoring pass: scores one candidate row y
/// against a block of b query vectors,
///   dots[j]  = Dot(queries[j], y, n)   for j < b
///   *y_norm2 = Dot(y, y, n)
/// loading y once per register block instead of once per query — the kernel
/// behind QueryEngine::QueryBatch, where the candidate row streams from
/// memory while the query block stays cache-resident. Every per-query
/// accumulator chain runs the exact reduction order of the stand-alone
/// Dot() in the same backend (and the y_norm2 chain matches DotAndNorm2's),
/// so each dots[j] / (Norm2(queries[j]) * sqrt(y_norm2)) is bit-identical
/// to the sequential one-query path. b == 0 is allowed and still fills
/// y_norm2.
void DotAndNorm2Batch(const float* const* queries, std::size_t b,
                      const float* y, std::size_t n, float* dots,
                      float* y_norm2);

/// Fused negative-sampling gradient step (Eqs. (8)-(10) coefficients):
/// in one pass over the row,
///   grad[i] += g * ctx[i]      (center-side gradient, pre-update ctx)
///   ctx[i]  += g * center[i]   (context-side update)
/// Equivalent to Axpy(g, ctx, grad, n) followed by Axpy(g, center, ctx, n),
/// but loads/stores each ctx element once, which halves the memory traffic
/// of the SGD inner loop.
void FusedGradStep(float g, const float* center, float* ctx, float* grad,
                   std::size_t n);

/// Portable reference kernels; always available regardless of the active
/// backend. The dispatched functions above are bit-compatible with these
/// up to floating-point reassociation (Dot/Norm2) and FMA rounding
/// (Axpy/FusedGradStep), covered by the parity tests.
namespace scalar {
float Dot(const float* x, const float* y, std::size_t n);
void Axpy(float a, const float* x, float* y, std::size_t n);
void Scale(float a, float* x, std::size_t n);
void Add(const float* x, float* out, std::size_t n);
float Norm2(const float* x, std::size_t n);
void DotAndNorm2(const float* x, const float* y, std::size_t n, float* dot,
                 float* y_norm2);
void DotAndNorm2Batch(const float* const* queries, std::size_t b,
                      const float* y, std::size_t n, float* dots,
                      float* y_norm2);
void FusedGradStep(float g, const float* center, float* ctx, float* grad,
                   std::size_t n);
}  // namespace scalar

/// HOGWILD row accessors. The asynchronous SGD trainers update shared
/// EmbeddingMatrix rows without locks (paper §5.2, HOGWILD [45]); those
/// races are intentional, but ThreadSanitizer cannot tell them from bugs.
/// Under ACTOR_TSAN every shared-row load/store is routed through these
/// relaxed std::atomic_ref accessors, so TSan sees deliberate atomics and
/// a clean run means "no *unintentional* races". In every other build they
/// compile to plain loads/stores (on x86 a relaxed float load/store is a
/// plain mov anyway), so the release hot path is unchanged.
#if defined(ACTOR_TSAN)
inline float RelaxedLoad(const float* p) {
  return std::atomic_ref<float>(*const_cast<float*>(p))
      .load(std::memory_order_relaxed);
}
inline void RelaxedStore(float* p, float v) {
  std::atomic_ref<float>(*p).store(v, std::memory_order_relaxed);
}
#else
inline float RelaxedLoad(const float* p) { return *p; }
inline void RelaxedStore(float* p, float v) { *p = v; }
#endif

/// Scalar kernels expressed entirely through RelaxedLoad/RelaxedStore.
/// Same iteration order as scalar::, hence bit-identical results (covered
/// by the parity tests). Installed as the active backend in ACTOR_TSAN
/// builds; compiled in all builds so parity stays testable everywhere.
namespace relaxed {
float Dot(const float* x, const float* y, std::size_t n);
void Axpy(float a, const float* x, float* y, std::size_t n);
void Scale(float a, float* x, std::size_t n);
void Add(const float* x, float* out, std::size_t n);
float Norm2(const float* x, std::size_t n);
void DotAndNorm2(const float* x, const float* y, std::size_t n, float* dot,
                 float* y_norm2);
void DotAndNorm2Batch(const float* const* queries, std::size_t b,
                      const float* y, std::size_t n, float* dots,
                      float* y_norm2);
void FusedGradStep(float g, const float* center, float* ctx, float* grad,
                   std::size_t n);
}  // namespace relaxed

/// Prefetches the first n floats at p into cache (write intent). Used by
/// the block-wise edge samplers to hide the latency of the random row
/// accesses behind the alias-table draws.
inline void PrefetchRow(const float* p, std::size_t n) {
#if defined(__GNUC__) || defined(__clang__)
  for (std::size_t off = 0; off < n; off += 16) {
    __builtin_prefetch(p + off, 1, 1);
  }
#else
  (void)p;
  (void)n;
#endif
}

/// Numerically-stable logistic sigmoid.
inline float Sigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

/// Piecewise-linear table-driven sigmoid, clamped to [-kSigmoidBound,
/// kSigmoidBound] as in word2vec/LINE reference implementations. Roughly 4x
/// faster than Sigmoid() inside the SGD inner loop.
class SigmoidTable {
 public:
  SigmoidTable();
  float operator()(float x) const {
    if (x >= kBound) return 1.0f;
    if (x <= -kBound) return 0.0f;
    const float pos = (x + kBound) * kScale;
    const int idx = static_cast<int>(pos);
    const float frac = pos - static_cast<float>(idx);
    return table_[idx] * (1.0f - frac) + table_[idx + 1] * frac;
  }

  static constexpr float kBound = 8.0f;

 private:
  static constexpr int kTableSize = 1024;
  static constexpr float kScale = kTableSize / (2.0f * kBound);
  float table_[kTableSize + 2];
};

}  // namespace actor

#endif  // ACTOR_UTIL_VEC_MATH_H_
