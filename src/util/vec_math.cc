#include "util/vec_math.h"

#include <cstring>

namespace actor {

float Dot(const float* x, const float* y, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void Axpy(float a, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void Scale(float a, float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

void Copy(const float* x, float* out, std::size_t n) {
  std::memcpy(out, x, n * sizeof(float));
}

void Add(const float* x, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] += x[i];
}

void Zero(float* x, std::size_t n) { std::memset(x, 0, n * sizeof(float)); }

float Norm2(const float* x, std::size_t n) {
  return std::sqrt(Dot(x, x, n));
}

void NormalizeInPlace(float* x, std::size_t n) {
  const float norm = Norm2(x, n);
  if (norm > 0.0f) Scale(1.0f / norm, x, n);
}

float Cosine(const float* x, const float* y, std::size_t n) {
  const float nx = Norm2(x, n);
  const float ny = Norm2(y, n);
  if (nx == 0.0f || ny == 0.0f) return 0.0f;
  return Dot(x, y, n) / (nx * ny);
}

SigmoidTable::SigmoidTable() {
  for (int i = 0; i < kTableSize + 2; ++i) {
    const float x = -kBound + static_cast<float>(i) / kScale;
    table_[i] = Sigmoid(x);
  }
}

}  // namespace actor
