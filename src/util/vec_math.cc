#include "util/vec_math.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define ACTOR_VEC_X86 1
#include <immintrin.h>
#endif

namespace actor {

// --------------------------------------------------------------------------
// Scalar reference kernels. Simple loops that GCC/Clang auto-vectorize at
// the baseline ISA; also the ground truth for the SIMD parity tests.
// --------------------------------------------------------------------------

namespace scalar {

float Dot(const float* x, const float* y, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void Axpy(float a, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void Scale(float a, float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

void Add(const float* x, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] += x[i];
}

float Norm2(const float* x, std::size_t n) { return std::sqrt(Dot(x, x, n)); }

void DotAndNorm2(const float* x, const float* y, std::size_t n, float* dot,
                 float* y_norm2) {
  // Two independent accumulator chains in one pass; each sees exactly the
  // addend sequence its stand-alone Dot() loop would, so results are
  // bit-identical to Dot(x, y, n) and Dot(y, y, n).
  float acc = 0.0f;
  float nn = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float yv = y[i];
    acc += x[i] * yv;
    nn += yv * yv;
  }
  *dot = acc;
  *y_norm2 = nn;
}

void DotAndNorm2Batch(const float* const* queries, std::size_t b,
                      const float* y, std::size_t n, float* dots,
                      float* y_norm2) {
  // The norm chain is its own pass in the same addend order as Dot(y, y, n)
  // (and DotAndNorm2's nn chain), so the result is bit-identical.
  float nn = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float yv = y[i];
    nn += yv * yv;
  }
  *y_norm2 = nn;
  // Queries in register blocks of four sharing each y load; every query
  // keeps an independent accumulator chain in i order, so dots[j] is
  // bit-identical to Dot(queries[j], y, n).
  std::size_t j = 0;
  for (; j + 4 <= b; j += 4) {
    const float* q0 = queries[j];
    const float* q1 = queries[j + 1];
    const float* q2 = queries[j + 2];
    const float* q3 = queries[j + 3];
    float a0 = 0.0f;
    float a1 = 0.0f;
    float a2 = 0.0f;
    float a3 = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      const float yv = y[i];
      a0 += q0[i] * yv;
      a1 += q1[i] * yv;
      a2 += q2[i] * yv;
      a3 += q3[i] * yv;
    }
    dots[j] = a0;
    dots[j + 1] = a1;
    dots[j + 2] = a2;
    dots[j + 3] = a3;
  }
  for (; j < b; ++j) dots[j] = Dot(queries[j], y, n);
}

void FusedGradStep(float g, const float* center, float* ctx, float* grad,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float c = ctx[i];
    grad[i] += g * c;
    ctx[i] = c + g * center[i];
  }
}

}  // namespace scalar

// --------------------------------------------------------------------------
// Relaxed-atomic kernels: the scalar loops with every load/store routed
// through the RelaxedLoad/RelaxedStore accessors. In ACTOR_TSAN builds the
// accessors are relaxed std::atomic_ref operations, which is what makes
// the HOGWILD trainers race-clean under ThreadSanitizer; elsewhere they
// are plain memory accesses and these functions are bit-identical to
// scalar:: (same iteration order, no FMA contraction differences).
// --------------------------------------------------------------------------

namespace relaxed {

float Dot(const float* x, const float* y, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    acc += RelaxedLoad(x + i) * RelaxedLoad(y + i);
  }
  return acc;
}

void Axpy(float a, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    RelaxedStore(y + i, RelaxedLoad(y + i) + a * RelaxedLoad(x + i));
  }
}

void Scale(float a, float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    RelaxedStore(x + i, a * RelaxedLoad(x + i));
  }
}

void Add(const float* x, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    RelaxedStore(out + i, RelaxedLoad(out + i) + RelaxedLoad(x + i));
  }
}

float Norm2(const float* x, std::size_t n) { return std::sqrt(Dot(x, x, n)); }

void DotAndNorm2(const float* x, const float* y, std::size_t n, float* dot,
                 float* y_norm2) {
  float acc = 0.0f;
  float nn = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float yv = RelaxedLoad(y + i);
    acc += RelaxedLoad(x + i) * yv;
    nn += yv * yv;
  }
  *dot = acc;
  *y_norm2 = nn;
}

void DotAndNorm2Batch(const float* const* queries, std::size_t b,
                      const float* y, std::size_t n, float* dots,
                      float* y_norm2) {
  float nn = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float yv = RelaxedLoad(y + i);
    nn += yv * yv;
  }
  *y_norm2 = nn;
  std::size_t j = 0;
  for (; j + 4 <= b; j += 4) {
    const float* q0 = queries[j];
    const float* q1 = queries[j + 1];
    const float* q2 = queries[j + 2];
    const float* q3 = queries[j + 3];
    float a0 = 0.0f;
    float a1 = 0.0f;
    float a2 = 0.0f;
    float a3 = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      const float yv = RelaxedLoad(y + i);
      a0 += RelaxedLoad(q0 + i) * yv;
      a1 += RelaxedLoad(q1 + i) * yv;
      a2 += RelaxedLoad(q2 + i) * yv;
      a3 += RelaxedLoad(q3 + i) * yv;
    }
    dots[j] = a0;
    dots[j + 1] = a1;
    dots[j + 2] = a2;
    dots[j + 3] = a3;
  }
  for (; j < b; ++j) dots[j] = Dot(queries[j], y, n);
}

void FusedGradStep(float g, const float* center, float* ctx, float* grad,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float c = RelaxedLoad(ctx + i);
    RelaxedStore(grad + i, RelaxedLoad(grad + i) + g * c);
    RelaxedStore(ctx + i, c + g * RelaxedLoad(center + i));
  }
}

}  // namespace relaxed

// --------------------------------------------------------------------------
// AVX2+FMA kernels. Compiled with per-function target attributes so the
// translation unit builds at the baseline ISA and these bodies are only
// executed after the CPUID check below passes. Rows of EmbeddingMatrix are
// 32-byte aligned with padded stride, but callers may also pass arbitrary
// stack buffers, so all loads/stores are unaligned ops (same throughput as
// aligned ops on every AVX2 core when the address is in fact aligned).
// --------------------------------------------------------------------------

#ifdef ACTOR_VEC_X86
namespace avx2 {

#define ACTOR_AVX2_TARGET __attribute__((target("avx2,fma")))

ACTOR_AVX2_TARGET static inline float HorizontalSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

ACTOR_AVX2_TARGET float Dot(const float* x, const float* y, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8),
                           _mm256_loadu_ps(y + i + 8), acc1);
  }
  if (i + 8 <= n) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i),
                           acc0);
    i += 8;
  }
  float acc = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

ACTOR_AVX2_TARGET void Axpy(float a, const float* x, float* y,
                            std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

ACTOR_AVX2_TARGET void Scale(float a, float* x, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= a;
}

ACTOR_AVX2_TARGET void Add(const float* x, float* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_add_ps(_mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(out + i)));
  }
  for (; i < n; ++i) out[i] += x[i];
}

ACTOR_AVX2_TARGET float Norm2(const float* x, std::size_t n) {
  return std::sqrt(Dot(x, x, n));
}

ACTOR_AVX2_TARGET void DotAndNorm2(const float* x, const float* y,
                                   std::size_t n, float* dot,
                                   float* y_norm2) {
  // Mirrors Dot()'s dual-accumulator 16-wide structure for both chains, so
  // each result is bit-identical to the corresponding stand-alone Dot().
  __m256 d0 = _mm256_setzero_ps();
  __m256 d1 = _mm256_setzero_ps();
  __m256 n0 = _mm256_setzero_ps();
  __m256 n1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 ylo = _mm256_loadu_ps(y + i);
    const __m256 yhi = _mm256_loadu_ps(y + i + 8);
    d0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), ylo, d0);
    d1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8), yhi, d1);
    n0 = _mm256_fmadd_ps(ylo, ylo, n0);
    n1 = _mm256_fmadd_ps(yhi, yhi, n1);
  }
  if (i + 8 <= n) {
    const __m256 yv = _mm256_loadu_ps(y + i);
    d0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), yv, d0);
    n0 = _mm256_fmadd_ps(yv, yv, n0);
    i += 8;
  }
  float acc = HorizontalSum(_mm256_add_ps(d0, d1));
  float nn = HorizontalSum(_mm256_add_ps(n0, n1));
  for (; i < n; ++i) {
    const float yv = y[i];
    acc += x[i] * yv;
    nn += yv * yv;
  }
  *dot = acc;
  *y_norm2 = nn;
}

ACTOR_AVX2_TARGET void DotAndNorm2Batch(const float* const* queries,
                                        std::size_t b, const float* y,
                                        std::size_t n, float* dots,
                                        float* y_norm2) {
  // Norm chain first, mirroring DotAndNorm2's n0/n1 structure — identical
  // to Dot(y, y, n) bit for bit.
  __m256 n0 = _mm256_setzero_ps();
  __m256 n1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 ylo = _mm256_loadu_ps(y + i);
    const __m256 yhi = _mm256_loadu_ps(y + i + 8);
    n0 = _mm256_fmadd_ps(ylo, ylo, n0);
    n1 = _mm256_fmadd_ps(yhi, yhi, n1);
  }
  if (i + 8 <= n) {
    const __m256 yv = _mm256_loadu_ps(y + i);
    n0 = _mm256_fmadd_ps(yv, yv, n0);
    i += 8;
  }
  float nn = HorizontalSum(_mm256_add_ps(n0, n1));
  for (; i < n; ++i) {
    const float yv = y[i];
    nn += yv * yv;
  }
  *y_norm2 = nn;
  // Query pairs share each y load; each query's d0/d1 chain and scalar tail
  // replicate Dot()'s dual-accumulator 16-wide structure exactly, so
  // dots[j] == Dot(queries[j], y, n) bit for bit.
  std::size_t j = 0;
  for (; j + 2 <= b; j += 2) {
    const float* qa = queries[j];
    const float* qb = queries[j + 1];
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 b0 = _mm256_setzero_ps();
    __m256 b1 = _mm256_setzero_ps();
    std::size_t t = 0;
    for (; t + 16 <= n; t += 16) {
      const __m256 ylo = _mm256_loadu_ps(y + t);
      const __m256 yhi = _mm256_loadu_ps(y + t + 8);
      a0 = _mm256_fmadd_ps(_mm256_loadu_ps(qa + t), ylo, a0);
      a1 = _mm256_fmadd_ps(_mm256_loadu_ps(qa + t + 8), yhi, a1);
      b0 = _mm256_fmadd_ps(_mm256_loadu_ps(qb + t), ylo, b0);
      b1 = _mm256_fmadd_ps(_mm256_loadu_ps(qb + t + 8), yhi, b1);
    }
    if (t + 8 <= n) {
      const __m256 yv = _mm256_loadu_ps(y + t);
      a0 = _mm256_fmadd_ps(_mm256_loadu_ps(qa + t), yv, a0);
      b0 = _mm256_fmadd_ps(_mm256_loadu_ps(qb + t), yv, b0);
      t += 8;
    }
    float acc_a = HorizontalSum(_mm256_add_ps(a0, a1));
    float acc_b = HorizontalSum(_mm256_add_ps(b0, b1));
    // Separate single-chain tail loops: a shared loop would let the
    // compiler contract the two chains' mul+add differently from Dot()'s
    // tail, breaking bit-identity.
    for (std::size_t ta = t; ta < n; ++ta) acc_a += qa[ta] * y[ta];
    for (std::size_t tb = t; tb < n; ++tb) acc_b += qb[tb] * y[tb];
    dots[j] = acc_a;
    dots[j + 1] = acc_b;
  }
  if (j < b) dots[j] = Dot(queries[j], y, n);
}

ACTOR_AVX2_TARGET void FusedGradStep(float g, const float* center, float* ctx,
                                     float* grad, std::size_t n) {
  const __m256 vg = _mm256_set1_ps(g);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 c = _mm256_loadu_ps(ctx + i);
    _mm256_storeu_ps(grad + i,
                     _mm256_fmadd_ps(vg, c, _mm256_loadu_ps(grad + i)));
    _mm256_storeu_ps(
        ctx + i, _mm256_fmadd_ps(vg, _mm256_loadu_ps(center + i), c));
  }
  for (; i < n; ++i) {
    const float c = ctx[i];
    grad[i] = std::fma(g, c, grad[i]);
    ctx[i] = std::fma(g, center[i], c);
  }
}

#undef ACTOR_AVX2_TARGET

}  // namespace avx2
#endif  // ACTOR_VEC_X86

// --------------------------------------------------------------------------
// Runtime dispatch. Function pointers are installed before main() by a
// static initializer in this TU; SetVecBackend re-points them (benchmarks
// and parity tests only).
// --------------------------------------------------------------------------

namespace {

struct KernelTable {
  float (*dot)(const float*, const float*, std::size_t) = &scalar::Dot;
  void (*axpy)(float, const float*, float*, std::size_t) = &scalar::Axpy;
  void (*scale)(float, float*, std::size_t) = &scalar::Scale;
  void (*add)(const float*, float*, std::size_t) = &scalar::Add;
  float (*norm2)(const float*, std::size_t) = &scalar::Norm2;
  void (*dot_norm2)(const float*, const float*, std::size_t, float*, float*) =
      &scalar::DotAndNorm2;
  void (*dot_norm2_batch)(const float* const*, std::size_t, const float*,
                          std::size_t, float*, float*) =
      &scalar::DotAndNorm2Batch;
  void (*fused)(float, const float*, float*, float*, std::size_t) =
      &scalar::FusedGradStep;
};

KernelTable g_kernels;
VecBackend g_backend = VecBackend::kScalar;

struct DispatchInit {
  DispatchInit() { SetVecBackend(VecBackend::kAvx2); }
};
DispatchInit g_dispatch_init;

}  // namespace

bool Avx2Available() {
#ifdef ACTOR_VEC_X86
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

VecBackend ActiveVecBackend() { return g_backend; }

const char* VecBackendName(VecBackend backend) {
  switch (backend) {
    case VecBackend::kScalar:
      return "scalar";
    case VecBackend::kRelaxed:
      return "relaxed";
    case VecBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

VecBackend SetVecBackend(VecBackend backend) {
#if defined(ACTOR_TSAN)
  // Under ThreadSanitizer only the relaxed-atomic kernels are installed:
  // the SIMD intrinsics (and plain scalar loops) would surface the
  // intentional HOGWILD races as reports. Requests for any backend land on
  // kRelaxed so existing benchmarks/tests keep working in TSan builds.
  (void)backend;
  g_kernels.dot = &relaxed::Dot;
  g_kernels.axpy = &relaxed::Axpy;
  g_kernels.scale = &relaxed::Scale;
  g_kernels.add = &relaxed::Add;
  g_kernels.norm2 = &relaxed::Norm2;
  g_kernels.dot_norm2 = &relaxed::DotAndNorm2;
  g_kernels.dot_norm2_batch = &relaxed::DotAndNorm2Batch;
  g_kernels.fused = &relaxed::FusedGradStep;
  g_backend = VecBackend::kRelaxed;
  return g_backend;
#else
#ifdef ACTOR_VEC_X86
  if (backend == VecBackend::kAvx2 && Avx2Available()) {
    g_kernels.dot = &avx2::Dot;
    g_kernels.axpy = &avx2::Axpy;
    g_kernels.scale = &avx2::Scale;
    g_kernels.add = &avx2::Add;
    g_kernels.norm2 = &avx2::Norm2;
    g_kernels.dot_norm2 = &avx2::DotAndNorm2;
    g_kernels.dot_norm2_batch = &avx2::DotAndNorm2Batch;
    g_kernels.fused = &avx2::FusedGradStep;
    g_backend = VecBackend::kAvx2;
    return g_backend;
  }
#endif
  if (backend == VecBackend::kRelaxed) {
    g_kernels.dot = &relaxed::Dot;
    g_kernels.axpy = &relaxed::Axpy;
    g_kernels.scale = &relaxed::Scale;
    g_kernels.add = &relaxed::Add;
    g_kernels.norm2 = &relaxed::Norm2;
    g_kernels.dot_norm2 = &relaxed::DotAndNorm2;
    g_kernels.dot_norm2_batch = &relaxed::DotAndNorm2Batch;
    g_kernels.fused = &relaxed::FusedGradStep;
    g_backend = VecBackend::kRelaxed;
    return g_backend;
  }
  g_kernels = KernelTable();
  g_backend = VecBackend::kScalar;
  return g_backend;
#endif  // ACTOR_TSAN
}

float Dot(const float* x, const float* y, std::size_t n) {
  return g_kernels.dot(x, y, n);
}

void Axpy(float a, const float* x, float* y, std::size_t n) {
  g_kernels.axpy(a, x, y, n);
}

void Scale(float a, float* x, std::size_t n) { g_kernels.scale(a, x, n); }

void Copy(const float* x, float* out, std::size_t n) {
  std::memcpy(out, x, n * sizeof(float));
}

void Add(const float* x, float* out, std::size_t n) {
  g_kernels.add(x, out, n);
}

void Zero(float* x, std::size_t n) { std::memset(x, 0, n * sizeof(float)); }

float Norm2(const float* x, std::size_t n) { return g_kernels.norm2(x, n); }

void NormalizeInPlace(float* x, std::size_t n) {
  const float norm = Norm2(x, n);
  if (norm > 0.0f) Scale(1.0f / norm, x, n);
}

float Cosine(const float* x, const float* y, std::size_t n) {
  const float nx = Norm2(x, n);
  const float ny = Norm2(y, n);
  if (nx == 0.0f || ny == 0.0f) return 0.0f;
  return Dot(x, y, n) / (nx * ny);
}

void DotAndNorm2(const float* x, const float* y, std::size_t n, float* dot,
                 float* y_norm2) {
  g_kernels.dot_norm2(x, y, n, dot, y_norm2);
}

void DotAndNorm2Batch(const float* const* queries, std::size_t b,
                      const float* y, std::size_t n, float* dots,
                      float* y_norm2) {
  g_kernels.dot_norm2_batch(queries, b, y, n, dots, y_norm2);
}

void FusedGradStep(float g, const float* center, float* ctx, float* grad,
                   std::size_t n) {
  g_kernels.fused(g, center, ctx, grad, n);
}

SigmoidTable::SigmoidTable() {
  for (int i = 0; i < kTableSize + 2; ++i) {
    const float x = -kBound + static_cast<float>(i) / kScale;
    table_[i] = Sigmoid(x);
  }
}

}  // namespace actor
