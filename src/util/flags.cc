#include "util/flags.h"

#include <cstdlib>

#include "util/string_util.h"

namespace actor {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) continue;
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";  // bare --flag means boolean true
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace actor
