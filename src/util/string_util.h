#ifndef ACTOR_UTIL_STRING_UTIL_H_
#define ACTOR_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace actor {

/// Splits `s` on `delim`, keeping empty fields. Split("a,,b", ',') ->
/// {"a", "", "b"}.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on any run of ASCII whitespace, dropping empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace actor

#endif  // ACTOR_UTIL_STRING_UTIL_H_
