#ifndef ACTOR_UTIL_FLAGS_H_
#define ACTOR_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

namespace actor {

/// Minimal --key=value command-line parser for the bench/example binaries.
/// Unknown flags are kept and can be listed; malformed arguments (not
/// starting with --) are ignored.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

 private:
  std::unordered_map<std::string, std::string> values_;
};

}  // namespace actor

#endif  // ACTOR_UTIL_FLAGS_H_
