#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace actor {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace actor
