#ifndef ACTOR_UTIL_STATUS_H_
#define ACTOR_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace actor {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention: library code never throws; fallible operations return a
/// Status (or Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kInternal,
  kNotImplemented,
};

/// Returns a stable human-readable name for `code` ("OK", "Invalid argument",
/// ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. The representation is inline (code + message
/// string): constructing an error from an already-built message moves the
/// string, so Status construction itself never allocates — serving-path
/// code may return errors without violating the hot-path-blocking rule.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// Error message; empty for OK statuses.
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. For use in
  /// examples and benches where an error is unrecoverable.
  void CheckOK() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;  // empty for OK
};

}  // namespace actor

/// Propagates a non-OK status to the caller.
#define ACTOR_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::actor::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (0)

#endif  // ACTOR_UTIL_STATUS_H_
