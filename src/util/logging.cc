#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace actor {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to reduce noise.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  (void)level_;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[FATAL " << base << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace actor
