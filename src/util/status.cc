#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace actor {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "Not implemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace actor
