#ifndef ACTOR_UTIL_LOGGING_H_
#define ACTOR_UTIL_LOGGING_H_

#include <cmath>
#include <sstream>
#include <string>

namespace actor {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink: `LogMessage(kInfo, __FILE__, __LINE__).stream()
/// << ...` emits one line to stderr at destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process at destruction. Backs
/// ACTOR_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace actor

#define ACTOR_LOG(level)                                              \
  if (::actor::LogLevel::k##level >= ::actor::GetLogLevel())          \
  ::actor::internal::LogMessage(::actor::LogLevel::k##level, __FILE__, \
                                __LINE__)                              \
      .stream()

/// Invariant check that is active in all build modes. Aborts on failure.
#define ACTOR_CHECK(cond)                                              \
  if (!(cond))                                                         \
  ::actor::internal::FatalLogMessage(__FILE__, __LINE__).stream()      \
      << "Check failed: " #cond " "

namespace actor {

/// True when the ACTOR_DCHECK invariant layer is compiled in (Debug builds
/// or -DACTOR_ENABLE_DCHECKS=ON; the `sanitize` preset turns it on). Tests
/// use this to decide whether DCHECK death cases are expected to fire.
#if defined(ACTOR_DEBUG_CHECKS)
inline constexpr bool kDebugChecksEnabled = true;
#else
inline constexpr bool kDebugChecksEnabled = false;
#endif

}  // namespace actor

/// Debug-only invariant check: identical to ACTOR_CHECK when
/// ACTOR_DEBUG_CHECKS is defined, compiled out (condition never evaluated,
/// but still type-checked) otherwise. Use for per-element / hot-path
/// invariants too expensive for release builds: index bounds, probability
/// mass, degree consistency, NaN propagation.
#if defined(ACTOR_DEBUG_CHECKS)
#define ACTOR_DCHECK(cond) ACTOR_CHECK(cond)
#else
#define ACTOR_DCHECK(cond) \
  while (false) ACTOR_CHECK(cond)
#endif

/// Debug-only finiteness check for a float/double expression; catches NaN
/// and +/-inf escaping the SGD updates, KDE bandwidths, etc.
#define ACTOR_DCHECK_FINITE(val) \
  ACTOR_DCHECK(std::isfinite(val)) << "non-finite value: " #val " = " << (val) << " "

#endif  // ACTOR_UTIL_LOGGING_H_
