#ifndef ACTOR_UTIL_LOGGING_H_
#define ACTOR_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace actor {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink: `LogMessage(kInfo, __FILE__, __LINE__).stream()
/// << ...` emits one line to stderr at destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process at destruction. Backs
/// ACTOR_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace actor

#define ACTOR_LOG(level)                                              \
  if (::actor::LogLevel::k##level >= ::actor::GetLogLevel())          \
  ::actor::internal::LogMessage(::actor::LogLevel::k##level, __FILE__, \
                                __LINE__)                              \
      .stream()

/// Invariant check that is active in all build modes. Aborts on failure.
#define ACTOR_CHECK(cond)                                              \
  if (!(cond))                                                         \
  ::actor::internal::FatalLogMessage(__FILE__, __LINE__).stream()      \
      << "Check failed: " #cond " "

#endif  // ACTOR_UTIL_LOGGING_H_
