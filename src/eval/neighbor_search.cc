#include "eval/neighbor_search.h"

#include <algorithm>

#include "util/vec_math.h"

namespace actor {

NeighborSearcher::NeighborSearcher(const EmbeddingMatrix* center,
                                   const BuiltGraphs* graphs,
                                   const Hotspots* hotspots,
                                   const Vocabulary* vocab)
    : center_(center), graphs_(graphs), hotspots_(hotspots), vocab_(vocab) {}

Result<std::vector<Neighbor>> NeighborSearcher::QueryByVector(
    const float* query, VertexType result_type, int k,
    VertexId exclude) const {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  const std::size_t dim = static_cast<std::size_t>(center_->dim());
  std::vector<Neighbor> results;
  for (VertexId v : graphs_->activity.VerticesOfType(result_type)) {
    if (v == exclude) continue;
    Neighbor n;
    n.vertex = v;
    n.similarity = Cosine(query, center_->row(v), dim);
    results.push_back(std::move(n));
  }
  const std::size_t keep = std::min<std::size_t>(k, results.size());
  std::partial_sort(results.begin(), results.begin() + keep, results.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.similarity > b.similarity;
                    });
  results.resize(keep);
  for (auto& n : results) {
    n.name = graphs_->activity.vertex_name(n.vertex);
    n.type = graphs_->activity.vertex_type(n.vertex);
  }
  return results;
}

Result<std::vector<Neighbor>> NeighborSearcher::QueryByVertex(
    VertexId v, VertexType result_type, int k) const {
  return QueryByVector(center_->row(v), result_type, k, v);
}

Result<std::vector<Neighbor>> NeighborSearcher::QueryByLocation(
    const GeoPoint& location, VertexType result_type, int k) const {
  const int32_t h = hotspots_->spatial.Assign(location);
  if (h < 0) return Status::NotFound("no spatial hotspots available");
  return QueryByVertex(graphs_->spatial_vertices[h], result_type, k);
}

Result<std::vector<Neighbor>> NeighborSearcher::QueryByHour(
    double hour, VertexType result_type, int k) const {
  const int32_t h = hotspots_->temporal.AssignHour(hour);
  if (h < 0) return Status::NotFound("no temporal hotspots available");
  return QueryByVertex(graphs_->temporal_vertices[h], result_type, k);
}

Result<std::vector<Neighbor>> NeighborSearcher::QueryByKeyword(
    const std::string& keyword, VertexType result_type, int k) const {
  const int32_t w = vocab_->Lookup(keyword);
  if (w < 0) return Status::NotFound("keyword not in vocabulary: " + keyword);
  const VertexId v = graphs_->word_vertices[w];
  if (v == kInvalidVertex) {
    return Status::NotFound("keyword not present in the activity graph: " +
                            keyword);
  }
  return QueryByVertex(v, result_type, k);
}

}  // namespace actor
