#include "eval/prediction.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "eval/mrr.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace actor {
namespace {

/// Draws `n` record indices != query uniformly from the test corpus.
std::vector<std::size_t> DrawNoise(std::size_t corpus_size, std::size_t query,
                                   int n, Rng& rng) {
  std::vector<std::size_t> noise;
  noise.reserve(n);
  while (static_cast<int>(noise.size()) < n) {
    const std::size_t idx = rng.Uniform(corpus_size);
    if (idx != query) noise.push_back(idx);
  }
  return noise;
}

double ScoreCandidate(const CrossModalModel& model, PredictionTask task,
                      const TokenizedRecord& query,
                      const TokenizedRecord& candidate) {
  switch (task) {
    case PredictionTask::kText:
      return model.ScoreText(query.timestamp, query.location,
                             candidate.word_ids);
    case PredictionTask::kLocation:
      return model.ScoreLocation(query.timestamp, query.word_ids,
                                 candidate.location);
    case PredictionTask::kTime:
      return model.ScoreTime(query.location, query.word_ids,
                             candidate.timestamp);
  }
  return 0.0;
}

std::string CandidateLabel(const TokenizedCorpus& corpus,
                           const TokenizedRecord& rec, PredictionTask task) {
  switch (task) {
    case PredictionTask::kText: {
      std::vector<std::string> words;
      words.reserve(rec.word_ids.size());
      for (int32_t w : rec.word_ids) words.push_back(corpus.vocab().word(w));
      return Join(words, " ");
    }
    case PredictionTask::kLocation:
      return StrPrintf("(%.2f, %.2f)", rec.location.x, rec.location.y);
    case PredictionTask::kTime: {
      const double h = HourOfDay(rec.timestamp);
      const int hh = static_cast<int>(h);
      const int mm = static_cast<int>((h - hh) * 60.0);
      const int day = static_cast<int>(rec.timestamp / kSecondsPerDay);
      return StrPrintf("day %d, %02d:%02d", day, hh, mm);
    }
  }
  return "";
}

}  // namespace

const char* PredictionTaskName(PredictionTask task) {
  switch (task) {
    case PredictionTask::kText:
      return "Text";
    case PredictionTask::kLocation:
      return "Location";
    case PredictionTask::kTime:
      return "Time";
  }
  return "?";
}

Result<double> EvaluateTask(const CrossModalModel& model,
                            const TokenizedCorpus& test, PredictionTask task,
                            const EvalOptions& options) {
  if (test.size() < static_cast<std::size_t>(options.num_noise) + 1) {
    return Status::InvalidArgument(
        "test corpus smaller than the candidate set size");
  }
  if (task == PredictionTask::kTime && !model.supports_time()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const std::size_t queries =
      options.max_queries > 0 ? std::min(options.max_queries, test.size())
                              : test.size();
  Rng rng(options.seed);
  std::vector<int> ranks;
  ranks.reserve(queries);
  for (std::size_t q = 0; q < queries; ++q) {
    const TokenizedRecord& query = test.record(q);
    const double truth = ScoreCandidate(model, task, query, query);
    std::vector<double> noise_scores;
    noise_scores.reserve(options.num_noise);
    for (std::size_t idx :
         DrawNoise(test.size(), q, options.num_noise, rng)) {
      noise_scores.push_back(
          ScoreCandidate(model, task, query, test.record(idx)));
    }
    ranks.push_back(RankOfTruth(truth, noise_scores));
  }
  return MeanReciprocalRank(ranks);
}

Result<MrrScores> EvaluateCrossModal(const CrossModalModel& model,
                                     const TokenizedCorpus& test,
                                     const EvalOptions& options) {
  MrrScores scores;
  ACTOR_ASSIGN_OR_RETURN(
      scores.text, EvaluateTask(model, test, PredictionTask::kText, options));
  ACTOR_ASSIGN_OR_RETURN(
      scores.location,
      EvaluateTask(model, test, PredictionTask::kLocation, options));
  ACTOR_ASSIGN_OR_RETURN(
      scores.time, EvaluateTask(model, test, PredictionTask::kTime, options));
  return scores;
}

Result<std::vector<RankedCandidate>> CaseStudyRanking(
    const CrossModalModel& model, const TokenizedCorpus& test,
    std::size_t query_index, PredictionTask task, const EvalOptions& options) {
  if (query_index >= test.size()) {
    return Status::OutOfRange("query index beyond test corpus");
  }
  if (test.size() < static_cast<std::size_t>(options.num_noise) + 1) {
    return Status::InvalidArgument(
        "test corpus smaller than the candidate set size");
  }
  const TokenizedRecord& query = test.record(query_index);
  // Seed folded with the query index so every model sees the same noise
  // for the same query, but different queries differ.
  Rng rng(options.seed ^ (0x9e3779b97f4a7c15ULL * (query_index + 1)));

  std::vector<RankedCandidate> candidates;
  candidates.reserve(options.num_noise + 1);
  RankedCandidate truth;
  truth.label = CandidateLabel(test, query, task);
  truth.score = ScoreCandidate(model, task, query, query);
  truth.is_truth = true;
  candidates.push_back(std::move(truth));
  for (std::size_t idx :
       DrawNoise(test.size(), query_index, options.num_noise, rng)) {
    RankedCandidate cand;
    cand.label = CandidateLabel(test, test.record(idx), task);
    cand.score = ScoreCandidate(model, task, query, test.record(idx));
    candidates.push_back(std::move(cand));
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const RankedCandidate& a, const RankedCandidate& b) {
                     return a.score > b.score;
                   });
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    candidates[i].rank = static_cast<int>(i + 1);
  }
  return candidates;
}

}  // namespace actor
