#ifndef ACTOR_EVAL_CROSS_MODAL_MODEL_H_
#define ACTOR_EVAL_CROSS_MODAL_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/geo_topic_model.h"
#include "data/record.h"
#include "serve/model_snapshot.h"

namespace actor {

/// Uniform scoring interface for the cross-modal prediction tasks of §6.2:
/// each method exposes "how compatible is this candidate with the observed
/// two modalities" as a real score (higher = more compatible).
class CrossModalModel {
 public:
  virtual ~CrossModalModel() = default;

  virtual std::string name() const = 0;

  /// False for LGTA/MGTM, which do not model time (Table 2 shows "/").
  virtual bool supports_time() const { return true; }

  /// Activity prediction: score candidate text (word ids) given time and
  /// location.
  virtual double ScoreText(double timestamp, const GeoPoint& location,
                           const std::vector<int32_t>& candidate_words) const = 0;

  /// Location prediction: score a candidate location given time and text.
  virtual double ScoreLocation(double timestamp,
                               const std::vector<int32_t>& words,
                               const GeoPoint& candidate_location) const = 0;

  /// Time prediction: score a candidate timestamp given location and text.
  virtual double ScoreTime(const GeoPoint& location,
                           const std::vector<int32_t>& words,
                           double candidate_timestamp) const = 0;
};

/// Adapter for every embedding-based method (ACTOR, CrossMap, LINE,
/// metapath2vec): modality values map to activity-graph unit vertices via
/// the hotspot assignment and vocabulary, queries and candidates become
/// mean unit vectors, and the score is their cosine similarity (§6.2.1).
class EmbeddingCrossModalModel : public CrossModalModel {
 public:
  /// Scores against one immutable model version; the adapter keeps the
  /// snapshot alive, so there is no lifetime contract beyond the
  /// shared_ptr (see docs/serving.md).
  EmbeddingCrossModalModel(std::string name,
                           std::shared_ptr<const ModelSnapshot> snapshot);

  std::string name() const override { return name_; }

  double ScoreText(double timestamp, const GeoPoint& location,
                   const std::vector<int32_t>& candidate_words) const override;
  double ScoreLocation(double timestamp, const std::vector<int32_t>& words,
                       const GeoPoint& candidate_location) const override;
  double ScoreTime(const GeoPoint& location,
                   const std::vector<int32_t>& words,
                   double candidate_timestamp) const override;

  /// Mean center vector of the words known to the graph; false if none.
  bool TextVector(const std::vector<int32_t>& words,
                  std::vector<float>* out) const;
  /// Center vector of the hotspot the location maps to.
  bool LocationVector(const GeoPoint& location, std::vector<float>* out) const;
  /// Center vector of the temporal hotspot the timestamp maps to.
  bool TimeVector(double timestamp, std::vector<float>* out) const;

  const ModelSnapshot& snapshot() const { return *snapshot_; }

 private:
  /// Cosine between the mean of `parts` and `candidate`; parts that are
  /// unavailable are skipped. Returns -1e9 when either side is empty so
  /// unresolvable candidates rank last.
  double CosineScore(const std::vector<const float*>& query_rows,
                     const float* candidate, bool candidate_ok) const;

  std::string name_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
};

/// Adapter for the geographical topic models (LGTA / MGTM).
class GeoTopicCrossModalModel : public CrossModalModel {
 public:
  GeoTopicCrossModalModel(std::string name, const GeoTopicModel* model)
      : name_(std::move(name)), model_(model) {}

  std::string name() const override { return name_; }
  bool supports_time() const override { return false; }

  double ScoreText(double timestamp, const GeoPoint& location,
                   const std::vector<int32_t>& candidate_words) const override;
  double ScoreLocation(double timestamp, const std::vector<int32_t>& words,
                       const GeoPoint& candidate_location) const override;
  double ScoreTime(const GeoPoint& location,
                   const std::vector<int32_t>& words,
                   double candidate_timestamp) const override;

 private:
  std::string name_;
  const GeoTopicModel* model_;
};

}  // namespace actor

#endif  // ACTOR_EVAL_CROSS_MODAL_MODEL_H_
