#include "eval/tuning.h"

#include <algorithm>
#include <cmath>

#include "eval/cross_modal_model.h"

namespace actor {

Result<std::vector<TuningCandidate>> GridSearchActor(
    const PreparedDataset& data, const std::vector<ActorOptions>& grid,
    const EvalOptions& eval) {
  if (grid.empty()) {
    return Status::InvalidArgument("tuning grid is empty");
  }
  if (data.split.valid.empty()) {
    return Status::FailedPrecondition("dataset has no validation split");
  }
  const TokenizedCorpus valid = Subset(data.full, data.split.valid);

  std::vector<TuningCandidate> results;
  results.reserve(grid.size());
  for (const ActorOptions& options : grid) {
    ACTOR_ASSIGN_OR_RETURN(ActorModel model,
                           TrainActor(*data.graphs, options));
    EmbeddingCrossModalModel scorer("tuning", data.Snapshot(model.center));
    ACTOR_ASSIGN_OR_RETURN(MrrScores scores,
                           EvaluateCrossModal(scorer, valid, eval));
    TuningCandidate candidate;
    candidate.options = options;
    candidate.validation_scores = scores;
    double sum = 0.0;
    int n = 0;
    for (double s : {scores.text, scores.location, scores.time}) {
      if (!std::isnan(s)) {
        sum += s;
        ++n;
      }
    }
    candidate.mean_mrr = n == 0 ? 0.0 : sum / n;
    results.push_back(std::move(candidate));
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const TuningCandidate& a, const TuningCandidate& b) {
                     return a.mean_mrr > b.mean_mrr;
                   });
  return results;
}

}  // namespace actor
