#ifndef ACTOR_EVAL_TUNING_H_
#define ACTOR_EVAL_TUNING_H_

#include <vector>

#include "core/actor.h"
#include "eval/pipeline.h"
#include "eval/prediction.h"
#include "util/result.h"

namespace actor {

/// Result of one grid-search candidate: the options tried and its mean MRR
/// over the three tasks on the validation split.
struct TuningCandidate {
  ActorOptions options;
  MrrScores validation_scores;
  double mean_mrr = 0.0;
};

/// Validation-based model selection over an explicit ActorOptions grid
/// (the paper's §6.1.1 valid split exists for exactly this). Trains one
/// model per candidate, scores it on the *validation* records of `data`,
/// and returns all candidates sorted best-first. NaN task scores are
/// skipped in the mean. Returns InvalidArgument for an empty grid.
Result<std::vector<TuningCandidate>> GridSearchActor(
    const PreparedDataset& data, const std::vector<ActorOptions>& grid,
    const EvalOptions& eval = {});

}  // namespace actor

#endif  // ACTOR_EVAL_TUNING_H_
