#ifndef ACTOR_EVAL_MRR_H_
#define ACTOR_EVAL_MRR_H_

#include <cstddef>
#include <vector>

namespace actor {

/// Mean Reciprocal Rank (Eq. (15)): the average of 1/rank_i over queries.
/// Ranks are 1-based; non-positive ranks are ignored. Returns 0 when no
/// valid rank is given.
double MeanReciprocalRank(const std::vector<int>& ranks);

/// Rank of the ground-truth score within a candidate list, 1-based.
/// Ties count against the truth (a degenerate model that scores everything
/// equally ranks last, not first).
int RankOfTruth(double truth_score, const std::vector<double>& noise_scores);

/// Hits@k: the fraction of queries whose 1-based rank is <= k. Non-positive
/// ranks are ignored; 0 when no valid rank is given.
double HitsAtK(const std::vector<int>& ranks, int k);

/// Mean rank of the truth (non-positive ranks ignored; 0 when empty).
double MeanRank(const std::vector<int>& ranks);

}  // namespace actor

#endif  // ACTOR_EVAL_MRR_H_
