#ifndef ACTOR_EVAL_NEIGHBOR_SEARCH_H_
#define ACTOR_EVAL_NEIGHBOR_SEARCH_H_

#include <string>
#include <vector>

#include "data/record.h"
#include "data/vocabulary.h"
#include "embedding/embedding_matrix.h"
#include "graph/graph_builder.h"
#include "hotspot/hotspot_detector.h"
#include "util/result.h"

namespace actor {

/// One cross-modal neighbor (paper §6.4): a unit of the requested type and
/// its cosine similarity to the query.
struct Neighbor {
  VertexId vertex = kInvalidVertex;
  std::string name;
  VertexType type = VertexType::kWord;
  double similarity = 0.0;
};

/// Cross-modal k-nearest-neighbor search in the learned embedding space.
/// Backs the spatial / temporal / textual queries of Figs. 9-11.
class NeighborSearcher {
 public:
  /// All pointers must outlive the searcher.
  NeighborSearcher(const EmbeddingMatrix* center, const BuiltGraphs* graphs,
                   const Hotspots* hotspots, const Vocabulary* vocab);

  /// Top-k units of `result_type` nearest to a geographic point (the point
  /// is first snapped to its spatial hotspot, Fig. 9).
  Result<std::vector<Neighbor>> QueryByLocation(const GeoPoint& location,
                                                VertexType result_type,
                                                int k) const;

  /// Top-k units nearest to an hour-of-day (snapped to its temporal
  /// hotspot, Fig. 10).
  Result<std::vector<Neighbor>> QueryByHour(double hour,
                                            VertexType result_type,
                                            int k) const;

  /// Top-k units nearest to a vocabulary keyword (Fig. 11). NotFound if the
  /// word is unknown or absent from the graph.
  Result<std::vector<Neighbor>> QueryByKeyword(const std::string& keyword,
                                               VertexType result_type,
                                               int k) const;

  /// Top-k units of `result_type` by cosine against an arbitrary query
  /// vector of the embedding dimension. `exclude` is omitted from results.
  Result<std::vector<Neighbor>> QueryByVector(
      const float* query, VertexType result_type, int k,
      VertexId exclude = kInvalidVertex) const;

 private:
  Result<std::vector<Neighbor>> QueryByVertex(VertexId v,
                                              VertexType result_type,
                                              int k) const;

  const EmbeddingMatrix* center_;
  const BuiltGraphs* graphs_;
  const Hotspots* hotspots_;
  const Vocabulary* vocab_;
};

}  // namespace actor

#endif  // ACTOR_EVAL_NEIGHBOR_SEARCH_H_
