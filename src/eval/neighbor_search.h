#ifndef ACTOR_EVAL_NEIGHBOR_SEARCH_H_
#define ACTOR_EVAL_NEIGHBOR_SEARCH_H_

#include "serve/query_engine.h"

namespace actor {

/// The cross-modal k-NN search of Figs. 9-11 lives in the serving layer
/// now: construct a QueryEngine from a published ModelSnapshot (e.g.
/// PreparedDataset::Snapshot() or OnlineActor::PublishSnapshot()) instead
/// of raw out-live-me pointers. This alias keeps the historical name for
/// the eval-side callers; Neighbor moved to serve/query_engine.h.
using NeighborSearcher = QueryEngine;

}  // namespace actor

#endif  // ACTOR_EVAL_NEIGHBOR_SEARCH_H_
