#include "eval/pipeline.h"

#include <algorithm>

#include "util/logging.h"

namespace actor {

Result<PreparedDataset> PrepareDataset(const PipelineOptions& options,
                                       const std::string& name) {
  PreparedDataset out;
  out.name = name;
  ACTOR_ASSIGN_OR_RETURN(out.dataset,
                         GenerateSynthetic(options.synthetic, name));
  ACTOR_ASSIGN_OR_RETURN(
      out.full, TokenizedCorpus::Build(out.dataset.corpus, options.corpus));

  const std::size_t n = out.full.size();
  const std::size_t valid_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(options.valid_fraction * n));
  const std::size_t test_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(options.test_fraction * n));
  ACTOR_ASSIGN_OR_RETURN(
      out.split, RandomSplit(n, valid_size, test_size, options.split_seed));
  out.train = Subset(out.full, out.split.train);
  out.test = Subset(out.full, out.split.test);

  ACTOR_ASSIGN_OR_RETURN(Hotspots hotspots,
                         DetectHotspots(out.train, options.hotspots));
  out.hotspots = std::make_shared<const Hotspots>(std::move(hotspots));
  ACTOR_ASSIGN_OR_RETURN(
      BuiltGraphs graphs,
      BuildGraphs(out.train, *out.hotspots, options.graph));
  out.graphs = std::make_shared<const BuiltGraphs>(std::move(graphs));
  out.vocab = std::make_shared<const Vocabulary>(out.full.vocab());
  return out;
}

std::shared_ptr<const ModelSnapshot> PreparedDataset::Snapshot(
    const EmbeddingMatrix& center, uint64_t version, const ModelSnapshot* prev,
    const DirtyRowSet* dirty) const {
  return ModelSnapshot::FromBatch(center, /*context=*/nullptr, graphs,
                                  hotspots, vocab, version, prev, dirty);
}

PipelineOptions UTGeoPipeline(double scale) {
  PipelineOptions p;
  p.synthetic = UTGeoLikeConfig(scale);
  return p;
}

PipelineOptions TweetPipeline(double scale) {
  PipelineOptions p;
  p.synthetic = TweetLikeConfig(scale);
  return p;
}

PipelineOptions FourSqPipeline(double scale) {
  PipelineOptions p;
  p.synthetic = FourSqLikeConfig(scale);
  p.corpus.max_vocab_size = 4000;  // 4SQ's small check-in vocabulary
  return p;
}

}  // namespace actor
