#include "eval/cross_modal_model.h"

#include <cmath>

#include "util/vec_math.h"

namespace actor {

namespace {
constexpr double kUnresolvable = -1e9;
}  // namespace

EmbeddingCrossModalModel::EmbeddingCrossModalModel(
    std::string name, std::shared_ptr<const ModelSnapshot> snapshot)
    : name_(std::move(name)), snapshot_(std::move(snapshot)) {}

bool EmbeddingCrossModalModel::TextVector(const std::vector<int32_t>& words,
                                          std::vector<float>* out) const {
  const ChunkedMatrix& center = snapshot_->center();
  const std::size_t dim = static_cast<std::size_t>(center.dim());
  out->assign(dim, 0.0f);
  int known = 0;
  for (int32_t w : words) {
    const VertexId v = snapshot_->WordVertex(w);
    if (v == kInvalidVertex) continue;
    Add(center.row(v), out->data(), dim);
    ++known;
  }
  if (known == 0) return false;
  Scale(1.0f / static_cast<float>(known), out->data(), dim);
  return true;
}

bool EmbeddingCrossModalModel::LocationVector(const GeoPoint& location,
                                              std::vector<float>* out) const {
  const VertexId v = snapshot_->SpatialVertex(location);
  if (v == kInvalidVertex) return false;
  const ChunkedMatrix& center = snapshot_->center();
  out->assign(center.row(v), center.row(v) + center.dim());
  return true;
}

bool EmbeddingCrossModalModel::TimeVector(double timestamp,
                                          std::vector<float>* out) const {
  const VertexId v = snapshot_->TemporalVertexAt(timestamp);
  if (v == kInvalidVertex) return false;
  const ChunkedMatrix& center = snapshot_->center();
  out->assign(center.row(v), center.row(v) + center.dim());
  return true;
}

double EmbeddingCrossModalModel::CosineScore(
    const std::vector<const float*>& query_rows, const float* candidate,
    bool candidate_ok) const {
  if (!candidate_ok || query_rows.empty()) return kUnresolvable;
  const std::size_t dim = static_cast<std::size_t>(snapshot_->dim());
  std::vector<float> query(dim, 0.0f);
  for (const float* row : query_rows) Add(row, query.data(), dim);
  Scale(1.0f / static_cast<float>(query_rows.size()), query.data(), dim);
  return Cosine(query.data(), candidate, dim);
}

double EmbeddingCrossModalModel::ScoreText(
    double timestamp, const GeoPoint& location,
    const std::vector<int32_t>& candidate_words) const {
  std::vector<float> time_vec, loc_vec, text_vec;
  std::vector<const float*> query;
  if (TimeVector(timestamp, &time_vec)) query.push_back(time_vec.data());
  if (LocationVector(location, &loc_vec)) query.push_back(loc_vec.data());
  const bool ok = TextVector(candidate_words, &text_vec);
  return CosineScore(query, text_vec.data(), ok);
}

double EmbeddingCrossModalModel::ScoreLocation(
    double timestamp, const std::vector<int32_t>& words,
    const GeoPoint& candidate_location) const {
  std::vector<float> time_vec, text_vec, loc_vec;
  std::vector<const float*> query;
  if (TimeVector(timestamp, &time_vec)) query.push_back(time_vec.data());
  if (TextVector(words, &text_vec)) query.push_back(text_vec.data());
  const bool ok = LocationVector(candidate_location, &loc_vec);
  return CosineScore(query, loc_vec.data(), ok);
}

double EmbeddingCrossModalModel::ScoreTime(const GeoPoint& location,
                                           const std::vector<int32_t>& words,
                                           double candidate_timestamp) const {
  std::vector<float> loc_vec, text_vec, time_vec;
  std::vector<const float*> query;
  if (LocationVector(location, &loc_vec)) query.push_back(loc_vec.data());
  if (TextVector(words, &text_vec)) query.push_back(text_vec.data());
  const bool ok = TimeVector(candidate_timestamp, &time_vec);
  return CosineScore(query, time_vec.data(), ok);
}

double GeoTopicCrossModalModel::ScoreText(
    double /*timestamp*/, const GeoPoint& location,
    const std::vector<int32_t>& candidate_words) const {
  return model_->ScoreJoint(location, candidate_words);
}

double GeoTopicCrossModalModel::ScoreLocation(
    double /*timestamp*/, const std::vector<int32_t>& words,
    const GeoPoint& candidate_location) const {
  return model_->ScoreJoint(candidate_location, words);
}

double GeoTopicCrossModalModel::ScoreTime(const GeoPoint& /*location*/,
                                          const std::vector<int32_t>& /*words*/,
                                          double /*candidate_timestamp*/) const {
  return kUnresolvable;  // LGTA/MGTM do not model time.
}

}  // namespace actor
