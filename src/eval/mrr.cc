#include "eval/mrr.h"

namespace actor {

double MeanReciprocalRank(const std::vector<int>& ranks) {
  double acc = 0.0;
  std::size_t n = 0;
  for (int r : ranks) {
    if (r > 0) {
      acc += 1.0 / static_cast<double>(r);
      ++n;
    }
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

int RankOfTruth(double truth_score, const std::vector<double>& noise_scores) {
  int rank = 1;
  for (double s : noise_scores) {
    if (s >= truth_score) ++rank;
  }
  return rank;
}

double HitsAtK(const std::vector<int>& ranks, int k) {
  std::size_t hits = 0, valid = 0;
  for (int r : ranks) {
    if (r <= 0) continue;
    ++valid;
    if (r <= k) ++hits;
  }
  return valid == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(valid);
}

double MeanRank(const std::vector<int>& ranks) {
  double acc = 0.0;
  std::size_t valid = 0;
  for (int r : ranks) {
    if (r <= 0) continue;
    acc += r;
    ++valid;
  }
  return valid == 0 ? 0.0 : acc / static_cast<double>(valid);
}

}  // namespace actor
