#ifndef ACTOR_EVAL_PIPELINE_H_
#define ACTOR_EVAL_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "data/corpus.h"
#include "data/synthetic.h"
#include "graph/graph_builder.h"
#include "hotspot/hotspot_detector.h"
#include "serve/model_snapshot.h"
#include "util/result.h"

namespace actor {

/// End-to-end preparation options: dataset generation through graph
/// construction (Algorithm 1, lines 1-2, plus the §6.1.1 splits).
struct PipelineOptions {
  SyntheticConfig synthetic;
  CorpusBuildOptions corpus;
  HotspotOptions hotspots;
  GraphBuildOptions graph;
  /// Validation / test fractions of the tokenized corpus.
  double valid_fraction = 0.05;
  double test_fraction = 0.10;
  uint64_t split_seed = 1234;
};

/// Everything the experiments need for one dataset. Hotspots, graphs, and
/// the vocabulary are held by shared_ptr-to-const so trained models can be
/// published as ModelSnapshots that share (rather than outlive-contract)
/// them; they are immutable once PrepareDataset returns.
struct PreparedDataset {
  std::string name;
  SyntheticDataset dataset;  // raw records + generator ground truth
  TokenizedCorpus full;      // shared vocabulary over the whole corpus
  CorpusSplit split;
  TokenizedCorpus train;
  TokenizedCorpus test;
  std::shared_ptr<const Hotspots> hotspots;    // detected on the train split
  std::shared_ptr<const BuiltGraphs> graphs;   // built on the train split
  std::shared_ptr<const Vocabulary> vocab;     // copy of full.vocab()

  /// Publishes `center` together with this dataset's graphs / hotspots /
  /// vocabulary as an immutable serving snapshot (copy-on-publish; see
  /// docs/serving.md). The usual way to stand up a QueryEngine or
  /// EmbeddingCrossModalModel after TrainActor. With `prev` and `dirty`
  /// the publish is a delta: chunks without a dirty row are shared with
  /// `prev` instead of re-copied.
  std::shared_ptr<const ModelSnapshot> Snapshot(
      const EmbeddingMatrix& center, uint64_t version = 0,
      const ModelSnapshot* prev = nullptr,
      const DirtyRowSet* dirty = nullptr) const;
};

/// Runs the full preparation pipeline.
Result<PreparedDataset> PrepareDataset(const PipelineOptions& options,
                                       const std::string& name);

/// Pipeline presets for the three paper-like datasets. `scale` multiplies
/// the generated corpus size (1.0 ≈ tens of thousands of records; the
/// paper's corpora are 20-50x larger, see DESIGN.md §2).
PipelineOptions UTGeoPipeline(double scale = 1.0);
PipelineOptions TweetPipeline(double scale = 1.0);
PipelineOptions FourSqPipeline(double scale = 1.0);

}  // namespace actor

#endif  // ACTOR_EVAL_PIPELINE_H_
