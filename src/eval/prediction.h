#ifndef ACTOR_EVAL_PREDICTION_H_
#define ACTOR_EVAL_PREDICTION_H_

#include <string>
#include <vector>

#include "data/corpus.h"
#include "eval/cross_modal_model.h"
#include "util/result.h"

namespace actor {

/// The three cross-modal prediction sub-tasks (paper §3 / §6.2).
enum class PredictionTask { kText, kLocation, kTime };

const char* PredictionTaskName(PredictionTask task);

/// Evaluation protocol of §6.2.1: every test record is a query; the
/// candidate set holds the ground truth plus `num_noise` values of the
/// predicted modality drawn from random other test records.
struct EvalOptions {
  int num_noise = 10;
  uint64_t seed = 99;
  /// Cap on the number of query records (0 = use all test records).
  std::size_t max_queries = 0;
};

/// MRR per task. A task a model does not support is NaN (printed "/").
struct MrrScores {
  double text = 0.0;
  double location = 0.0;
  double time = 0.0;
};

/// Runs the full three-task evaluation of one model over the test corpus.
Result<MrrScores> EvaluateCrossModal(const CrossModalModel& model,
                                     const TokenizedCorpus& test,
                                     const EvalOptions& options = {});

/// Runs one task only; returns the MRR.
Result<double> EvaluateTask(const CrossModalModel& model,
                            const TokenizedCorpus& test, PredictionTask task,
                            const EvalOptions& options = {});

/// One candidate row of a case-study ranking (paper Figs. 5, 8; Table 3).
struct RankedCandidate {
  std::string label;   // candidate text / location / time rendering
  double score = 0.0;
  bool is_truth = false;
  int rank = 0;        // 1-based, after sorting by score descending
};

/// Ranks the ground-truth record's modality value against the same
/// candidates for one query record (index into `test`), for side-by-side
/// method comparisons. Noise candidates are drawn with `options.seed`, so
/// two models called with equal options see identical candidate sets.
Result<std::vector<RankedCandidate>> CaseStudyRanking(
    const CrossModalModel& model, const TokenizedCorpus& test,
    std::size_t query_index, PredictionTask task,
    const EvalOptions& options = {});

}  // namespace actor

#endif  // ACTOR_EVAL_PREDICTION_H_
