#include "core/meta_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace actor {

int MetaGraph::CountType(VertexType t) const {
  return static_cast<int>(std::count(vertices.begin(), vertices.end(), t));
}

std::vector<EdgeType> MetaGraph::CoveredEdgeTypes() const {
  std::vector<EdgeType> types;
  for (const auto& [a, b] : edges) {
    auto et = EdgeTypeBetween(vertices[a], vertices[b]);
    if (!et.ok()) continue;
    if (std::find(types.begin(), types.end(), *et) == types.end()) {
      types.push_back(*et);
    }
  }
  return types;
}

MetaGraph IntraRecordMetaGraph() {
  MetaGraph m;
  m.name = "M0";
  m.vertices = {VertexType::kTime, VertexType::kLocation, VertexType::kWord,
                VertexType::kWord};
  // T-L, L-W, W-T for both word slots, and W-W.
  m.edges = {{0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 0}, {2, 3}};
  m.inter_record = false;
  return m;
}

std::vector<MetaGraph> InterRecordMetaGraphs() {
  // Unit-type combinations attached to the mentioned user.
  const std::vector<std::pair<std::string, std::vector<VertexType>>> combos = {
      {"M1", {VertexType::kTime}},
      {"M2", {VertexType::kLocation}},
      {"M3", {VertexType::kWord}},
      {"M4", {VertexType::kTime, VertexType::kWord}},
      {"M5", {VertexType::kLocation, VertexType::kWord}},
      {"M6", {VertexType::kTime, VertexType::kLocation}},
  };
  std::vector<MetaGraph> metas;
  metas.reserve(combos.size());
  for (const auto& [name, units] : combos) {
    MetaGraph m;
    m.name = name;
    m.inter_record = true;
    // Slot 0: the mentioning user; slot 1: the mentioned user.
    m.vertices = {VertexType::kUser, VertexType::kUser};
    m.edges.emplace_back(0, 1);  // the U-U mention edge
    for (VertexType unit : units) {
      const int slot = static_cast<int>(m.vertices.size());
      m.vertices.push_back(unit);
      m.edges.emplace_back(1, slot);  // unit hangs off the mentioned user
    }
    metas.push_back(std::move(m));
  }
  return metas;
}

const std::vector<EdgeType>& IntraEdgeTypes() {
  static const std::vector<EdgeType> kTypes = {EdgeType::kTL, EdgeType::kLW,
                                               EdgeType::kWT, EdgeType::kWW};
  return kTypes;
}

const std::vector<EdgeType>& InterEdgeTypes() {
  static const std::vector<EdgeType> kTypes = {EdgeType::kUT, EdgeType::kUW,
                                               EdgeType::kUL};
  return kTypes;
}

int64_t CountInterRecordInstances(const BuiltGraphs& graphs,
                                  const MetaGraph& meta) {
  ACTOR_CHECK(meta.inter_record) << "expects an inter-record meta-graph";
  // Required unit types hanging off the mentioned user.
  std::vector<VertexType> required(meta.vertices.begin() + 2,
                                   meta.vertices.end());
  auto user_edge_type = [](VertexType unit) {
    switch (unit) {
      case VertexType::kTime:
        return EdgeType::kUT;
      case VertexType::kWord:
        return EdgeType::kUW;
      case VertexType::kLocation:
        return EdgeType::kUL;
      default:
        return EdgeType::kUU;
    }
  };
  int64_t instances = 0;
  for (const auto& units : graphs.record_units) {
    for (VertexId mentioned : units.mentioned) {
      bool ok = true;
      for (VertexType unit : required) {
        if (graphs.activity.Degree(user_edge_type(unit), mentioned) <= 0.0) {
          ok = false;
          break;
        }
      }
      if (ok) ++instances;
    }
  }
  return instances;
}

}  // namespace actor
