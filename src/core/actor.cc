#include "core/actor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/meta_graph.h"
#include "embedding/negative_sampler.h"
#include "embedding/sgd.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/vec_math.h"

namespace actor {
namespace {

Status ValidateOptions(const ActorOptions& options) {
  if (options.dim <= 0) return Status::InvalidArgument("dim must be positive");
  if (options.negatives < 1) {
    return Status::InvalidArgument("negatives must be >= 1");
  }
  if (options.initial_lr <= 0.0f) {
    return Status::InvalidArgument("learning rate must be positive");
  }
  if (options.epochs <= 0 || options.samples_per_edge <= 0) {
    return Status::InvalidArgument("epochs/samples_per_edge must be positive");
  }
  return Status::OK();
}

/// The U-edge type that connects a unit of the given type to users.
EdgeType UserEdgeTypeFor(VertexType unit) {
  switch (unit) {
    case VertexType::kTime:
      return EdgeType::kUT;
    case VertexType::kLocation:
      return EdgeType::kUL;
    case VertexType::kWord:
      return EdgeType::kUW;
    case VertexType::kUser:
      return EdgeType::kUU;
  }
  return EdgeType::kUU;
}

/// Algorithm 1 line 4: initialize every activity-graph vertex from its
/// strongest-connected user's pre-trained vector; vertices with no user
/// connection (and users absent from the interaction graph) keep their
/// random initialization.
void InitializeFromUserEmbeddings(const BuiltGraphs& graphs,
                                  const LineEmbedding& user_embedding,
                                  Rng& rng, EmbeddingMatrix* center,
                                  EmbeddingMatrix* context) {
  const int32_t dim = center->dim();
  // Activity-graph user vertex -> interaction-graph row.
  std::unordered_map<VertexId, VertexId> act_to_int;
  act_to_int.reserve(graphs.activity_users.size());
  for (const auto& [user_id, act_v] : graphs.activity_users) {
    auto it = graphs.interaction_users.find(user_id);
    if (it != graphs.interaction_users.end()) {
      act_to_int.emplace(act_v, it->second);
    }
  }
  auto seed_row = [&](EmbeddingMatrix* m, VertexId v, const float* user_vec) {
    // Pre-trained user vector plus a small symmetry-breaking jitter so
    // vertices sharing a user do not start exactly coincident.
    float* row = m->row(v);
    const float scale = 0.1f / static_cast<float>(dim);
    for (int32_t d = 0; d < dim; ++d) {
      row[d] = user_vec[d] + (rng.UniformFloat() - 0.5f) * scale;
    }
  };

  const Heterograph& g = graphs.activity;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexType vt = g.vertex_type(v);
    const float* user_vec = nullptr;
    if (vt == VertexType::kUser) {
      auto it = act_to_int.find(v);
      if (it != act_to_int.end()) {
        user_vec = user_embedding.center.row(it->second);
      }
    } else {
      // Choose the user with the highest connection weight (paper §5.2.1).
      const EdgeType e = UserEdgeTypeFor(vt);
      const auto neighbors = g.Neighbors(e, v);
      const auto weights = g.NeighborWeights(e, v);
      double best_w = 0.0;
      VertexId best_user = kInvalidVertex;
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (g.vertex_type(neighbors[i]) == VertexType::kUser &&
            weights[i] > best_w) {
          best_w = weights[i];
          best_user = neighbors[i];
        }
      }
      if (best_user != kInvalidVertex) {
        auto it = act_to_int.find(best_user);
        if (it != act_to_int.end()) {
          user_vec = user_embedding.center.row(it->second);
        }
      }
    }
    if (user_vec != nullptr) {
      seed_row(center, v, user_vec);
      seed_row(context, v, user_vec);
    }
  }
}

/// One bag-of-words record step (footnote 4): the record's words act as a
/// single summed center vector that predicts the record's location unit,
/// time unit, and each of its words; the accumulated center gradient is
/// distributed to every member word. The record's T-L pair trains as two
/// plain skip-gram steps.
void TrainRecordBagOfWords(const RecordUnits& units,
                           const TypedNegativeSampler& noise,
                           const SigmoidTable& sigmoid, int negatives,
                           float lr, bool sum_composite, Rng& rng,
                           EmbeddingMatrix* center, EmbeddingMatrix* context,
                           std::vector<float>* comp_buf,
                           std::vector<float>* grad_buf,
                           std::vector<float>* grad2_buf,
                           DirtyRowSet* dirty) {
  const std::size_t dim = static_cast<std::size_t>(center->dim());
  const auto& words = units.word_units;
  // Dirty tracking for the delta publish path: every row this record step
  // mutates — its units' center rows, positive context rows (the same
  // unit ids), and every negative draw — lands in the shard-local set
  // `dirty` points at (merged at the batch barrier, R4 discipline).
  if (dirty != nullptr) {
    dirty->Mark(units.time_unit);
    dirty->Mark(units.location_unit);
    for (VertexId w : words) dirty->Mark(w);
  }
  auto neg = [&noise, dirty](EdgeType e, VertexType t) {
    return [&noise, dirty, e, t](Rng& r) {
      const VertexId n = noise.Sample(e, t, r);
      if (dirty != nullptr && n != kInvalidVertex) dirty->Mark(n);
      return n;
    };
  };

  // T-L pair (both orientations).
  if (units.time_unit != units.location_unit) {
    float* grad = grad_buf->data();
    Zero(grad, dim);
    NegativeSamplingUpdate(center->row(units.time_unit), units.location_unit,
                           negatives, lr, context, sigmoid, rng,
                           neg(EdgeType::kTL, VertexType::kLocation), grad);
    Add(grad, center->row(units.time_unit), dim);
    Zero(grad, dim);
    NegativeSamplingUpdate(center->row(units.location_unit), units.time_unit,
                           negatives, lr, context, sigmoid, rng,
                           neg(EdgeType::kTL, VertexType::kTime), grad);
    Add(grad, center->row(units.location_unit), dim);
  }
  if (words.empty()) return;

  // Composite bag-of-words center vector: the mean of the record's word
  // vectors (footnote 4 takes the sum; the mean differs only by a scale
  // factor and keeps the sigmoid inputs in the same range as single-unit
  // steps, which matters at small d).
  float* comp = comp_buf->data();
  Zero(comp, dim);
  for (VertexId w : words) Add(center->row(w), comp, dim);
  if (!sum_composite) {
    Scale(1.0f / static_cast<float>(words.size()), comp, dim);
  }

  // Bag -> location and bag -> time.
  float* grad = grad_buf->data();
  Zero(grad, dim);
  NegativeSamplingUpdate(comp, units.location_unit, negatives, lr, context,
                         sigmoid, rng,
                         neg(EdgeType::kLW, VertexType::kLocation), grad);
  NegativeSamplingUpdate(comp, units.time_unit, negatives, lr, context,
                         sigmoid, rng, neg(EdgeType::kWT, VertexType::kTime),
                         grad);
  for (VertexId w : words) Add(grad, center->row(w), dim);

  // Bag-minus-self -> each word (the WW relation under the bag model).
  if (words.size() >= 2) {
    const float n_words = static_cast<float>(words.size());
    float* comp_minus = grad2_buf->data();
    for (VertexId w : words) {
      // Composite of the other words: sum - x_w, or its mean
      // (n * comp - x_w) / (n - 1) under the mean composite.
      Copy(comp, comp_minus, dim);
      if (!sum_composite) Scale(n_words, comp_minus, dim);
      Axpy(-1.0f, center->row(w), comp_minus, dim);
      if (!sum_composite) Scale(1.0f / (n_words - 1.0f), comp_minus, dim);
      Zero(grad, dim);
      NegativeSamplingUpdate(comp_minus, w, negatives, lr, context, sigmoid,
                             rng, neg(EdgeType::kWW, VertexType::kWord), grad);
      for (VertexId other : words) {
        if (other != w) Add(grad, center->row(other), dim);
      }
    }
  }

  // Location/time predict individual words as contexts, keeping both
  // directions of the LW/WT types trained under the bag model as well.
  Zero(grad, dim);
  const VertexId some_word = words[rng.Uniform(words.size())];
  NegativeSamplingUpdate(center->row(units.location_unit), some_word,
                         negatives, lr, context, sigmoid, rng,
                         neg(EdgeType::kLW, VertexType::kWord), grad);
  Add(grad, center->row(units.location_unit), dim);
  Zero(grad, dim);
  NegativeSamplingUpdate(center->row(units.time_unit), some_word, negatives,
                         lr, context, sigmoid, rng,
                         neg(EdgeType::kWT, VertexType::kWord), grad);
  Add(grad, center->row(units.time_unit), dim);
}

}  // namespace

Result<ActorModel> TrainActor(const BuiltGraphs& graphs,
                              const ActorOptions& options) {
  ACTOR_RETURN_NOT_OK(ValidateOptions(options));
  const Heterograph& g = graphs.activity;
  if (!g.finalized() || !graphs.user_graph.finalized()) {
    return Status::FailedPrecondition("graphs must be finalized");
  }
  if (g.num_vertices() == 0) {
    return Status::InvalidArgument("activity graph has no vertices");
  }

  ActorModel model;
  model.center = EmbeddingMatrix(g.num_vertices(), options.dim);
  model.context = EmbeddingMatrix(g.num_vertices(), options.dim);
  Rng rng(options.seed);
  model.center.InitUniform(rng);
  model.context.InitZero();
  // A freshly initialized model is fully dirty relative to any previous
  // snapshot; the per-batch tracking below only matters for callers that
  // Clear() and keep training after this run.
  model.dirty.Resize(g.num_vertices());
  model.dirty.MarkAll();

  // One persistent worker pool for the whole run — LINE pre-training, the
  // edge-sampling trainer, and the record loop all share it, so thread
  // spawn/join happens once per run rather than once per TrainEdgeType
  // call (hundreds across epochs x edge types). A caller-owned pool
  // (options.pool) extends that to once per *process* across runs.
  // num_threads <= 1 ignores any provided pool: the whole run stays on the
  // sequential, bit-deterministic path.
  std::unique_ptr<ThreadPool> pool_storage;
  ThreadPool* pool = options.num_threads > 1 ? options.pool : nullptr;
  if (pool == nullptr && options.num_threads > 1) {
    pool_storage = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options.num_threads));
    pool = pool_storage.get();
  }

  // --- Lines 3-4: user-graph pre-training and hierarchical init ---------
  Stopwatch pretrain_timer;
  const bool has_user_graph =
      graphs.user_graph.edges(EdgeType::kUU).size() > 0;
  if (options.use_inter && options.init_from_users && has_user_graph) {
    LineOptions user_opts;
    user_opts.dim = options.dim;
    user_opts.order = 2;
    user_opts.negatives = std::max(options.negatives, 5);
    user_opts.samples_per_edge = options.user_pretrain_samples_per_edge;
    user_opts.num_threads = options.num_threads;
    user_opts.pool = pool;
    user_opts.seed = options.seed ^ 0xabcdef12ULL;
    user_opts.edge_types = {EdgeType::kUU};
    ACTOR_ASSIGN_OR_RETURN(LineEmbedding user_embedding,
                           TrainLine(graphs.user_graph, user_opts));
    if (options.init_from_users) {
      InitializeFromUserEmbeddings(graphs, user_embedding, rng, &model.center,
                                   &model.context);
    }
    model.stats.pretrain_seconds = pretrain_timer.ElapsedSeconds();
  }

  // --- Lines 5-11: alternating meta-graph training -----------------------
  Stopwatch train_timer;
  ACTOR_ASSIGN_OR_RETURN(TypedNegativeSampler noise,
                         TypedNegativeSampler::Create(g));
  TrainOptions train_opts;
  train_opts.dim = options.dim;
  train_opts.negatives = options.negatives;
  train_opts.num_threads = options.num_threads;
  train_opts.pool = pool;
  train_opts.seed = options.seed + 1;
  train_opts.dirty_rows = &model.dirty;
  EdgeSamplingTrainer trainer(&g, &model.center, &model.context, &noise,
                              train_opts);
  ACTOR_RETURN_NOT_OK(trainer.Prepare());

  // Per-epoch budgets: every directed edge of a type is sampled
  // samples_per_edge times over the full run.
  auto epoch_budget = [&](EdgeType e) -> int64_t {
    const int64_t edges = static_cast<int64_t>(g.edges(e).size());
    return (edges * options.samples_per_edge + options.epochs - 1) /
           options.epochs;
  };

  // Bag-of-words budget: equivalent unit-update cost to the plain
  // LW/WT/WW budget, so ablations compare at matched compute.
  int64_t word_edge_budget_per_epoch = 0;
  for (EdgeType e : {EdgeType::kLW, EdgeType::kWT, EdgeType::kWW}) {
    word_edge_budget_per_epoch += epoch_budget(e);
  }
  double avg_cost = 0.0;
  for (const auto& units : graphs.record_units) {
    avg_cost += 4.0 + 2.0 * static_cast<double>(units.word_units.size());
  }
  avg_cost = std::max(1.0, avg_cost / std::max<std::size_t>(
                                          1, graphs.record_units.size()));
  const int64_t records_per_epoch =
      options.use_bag_of_words
          ? std::max<int64_t>(
                1, static_cast<int64_t>(
                       static_cast<double>(word_edge_budget_per_epoch) /
                       avg_cost))
          : 0;

  const SigmoidTable sigmoid;
  // Per-shard dirty scratch for the record loop, reused across epochs.
  std::vector<DirtyRowSet> record_dirty(pool == nullptr ? 0
                                                        : pool->num_threads());
  // Per-shard gradient scratch for the record loop, allocated at the
  // dispatch boundary: the record shard body runs on the hot path and
  // must not allocate.
  const std::size_t record_shards = pool == nullptr ? 1 : pool->num_threads();
  std::vector<std::vector<float>> rec_comp(record_shards),
      rec_grad(record_shards), rec_grad2(record_shards);
  if (options.use_bag_of_words) {
    for (std::size_t t = 0; t < record_shards; ++t) {
      rec_comp[t].resize(static_cast<std::size_t>(options.dim));
      rec_grad[t].resize(static_cast<std::size_t>(options.dim));
      rec_grad2[t].resize(static_cast<std::size_t>(options.dim));
    }
  }
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const float frac =
        static_cast<float>(epoch) / static_cast<float>(options.epochs);
    const float lr = std::max(options.initial_lr * (1.0f - frac),
                              options.initial_lr * 1e-3f);

    // Inter-record meta-graph edge types (Algorithm 1, lines 6-8).
    if (options.use_inter) {
      for (EdgeType e : InterEdgeTypes()) {
        const int64_t m = epoch_budget(e);
        ACTOR_RETURN_NOT_OK(trainer.TrainEdgeType(e, m, lr));
        model.stats.edge_steps += m;
      }
    }

    // Intra-record meta-graph (lines 9-11).
    if (!options.use_bag_of_words) {
      for (EdgeType e : IntraEdgeTypes()) {
        const int64_t m = epoch_budget(e);
        ACTOR_RETURN_NOT_OK(trainer.TrainEdgeType(e, m, lr));
        model.stats.edge_steps += m;
      }
    } else {
      // TL edges train as plain pairs inside the record step; LW/WT/WW
      // train through the record-level bag-of-words model. The analyzer
      // derives the HOGWILD scope from the ShardedRange dispatch below;
      // the shard body uses only the caller-owned per-shard scratch.
      auto run_records = [&](int64_t count, uint64_t seed, DirtyRowSet* dirty,
                             int t) {
        Rng shard_rng(seed);
        for (int64_t i = 0; i < count; ++i) {
          const auto& units =
              graphs.record_units[shard_rng.Uniform(graphs.record_units.size())];
          TrainRecordBagOfWords(units, noise, sigmoid, options.negatives, lr,
                                options.bow_sum_composite, shard_rng,
                                &model.center, &model.context,
                                &rec_comp[static_cast<std::size_t>(t)],
                                &rec_grad[static_cast<std::size_t>(t)],
                                &rec_grad2[static_cast<std::size_t>(t)],
                                dirty);
        }
      };
      const uint64_t record_step = 1000 + static_cast<uint64_t>(epoch);
      if (pool == nullptr) {
        run_records(records_per_epoch, ShardSeed(options.seed, record_step, 0),
                    &model.dirty, 0);
      } else {
        for (auto& s : record_dirty) {
          s.Resize(g.num_vertices());
          s.Clear();
        }
        pool->ShardedRange(
            0, static_cast<std::size_t>(records_per_epoch),
            [&](int t, std::size_t lo, std::size_t hi) {
              run_records(static_cast<int64_t>(hi - lo),
                          ShardSeed(options.seed, record_step, t),
                          &record_dirty[static_cast<std::size_t>(t)], t);
            });
        // Batch barrier: fold the shard-local sets into the model's.
        for (const auto& s : record_dirty) model.dirty.MergeFrom(s);
      }
      model.stats.record_steps += records_per_epoch;
    }
  }
  model.stats.train_seconds = train_timer.ElapsedSeconds();
  return model;
}

std::shared_ptr<const ModelSnapshot> PublishActorModel(
    const ActorModel& model, std::shared_ptr<const BuiltGraphs> graphs,
    std::shared_ptr<const Hotspots> hotspots,
    std::shared_ptr<const Vocabulary> vocab, const ModelSnapshot* prev) {
  const uint64_t version = static_cast<uint64_t>(model.stats.edge_steps) +
                           static_cast<uint64_t>(model.stats.record_steps);
  return ModelSnapshot::FromBatch(model.center, &model.context,
                                  std::move(graphs), std::move(hotspots),
                                  std::move(vocab), version, prev,
                                  prev == nullptr ? nullptr : &model.dirty);
}

}  // namespace actor
