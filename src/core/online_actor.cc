#include "core/online_actor.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "embedding/sgd.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace actor {

Result<OnlineActor> OnlineActor::Create(OnlineActorOptions options) {
  if (options.dim <= 0 || options.negatives < 1) {
    return Status::InvalidArgument("dim and negatives must be positive");
  }
  if (options.decay_per_batch <= 0.0 || options.decay_per_batch > 1.0) {
    return Status::InvalidArgument("decay_per_batch must be in (0, 1]");
  }
  if (options.samples_per_edge_per_batch <= 0.0) {
    return Status::InvalidArgument("samples_per_edge_per_batch must be > 0");
  }
  if (options.min_edge_weight <= 0.0) {
    return Status::InvalidArgument("min_edge_weight must be > 0");
  }
  if (options.num_shards < 0) {
    return Status::InvalidArgument("num_shards must be >= 0");
  }
  OnlineActor model(options);
  // Legacy mode (num_shards == 0) runs the whole model in one physical
  // shard, so every sharded container below degenerates to the flat
  // layout with local ids == global ids.
  model.shards_ = std::max(1, options.num_shards);
  model.sharded_ = options.num_shards > 0;
  PartitionSpec spec;
  spec.num_shards = model.shards_;
  spec.strategy = options.shard_strategy;
  model.partitioner_ = VertexPartitioner(spec);
  model.map_ = ShardMap(model.shards_);
  model.center_ = ShardedEmbeddingMatrix(model.shards_, options.dim);
  model.context_ = ShardedEmbeddingMatrix(model.shards_, options.dim);
  for (auto& store : model.edges_) {
    store.Reset(model.shards_, options.min_edge_weight);
  }
  for (auto& caches : model.samplers_) {
    caches.resize(static_cast<std::size_t>(model.shards_));
  }
  model.owned_dirty_.resize(static_cast<std::size_t>(model.shards_));
  model.tiles_.resize(static_cast<std::size_t>(model.shards_));
  for (auto& tiles : model.tiles_) tiles.SetDim(options.dim);
  // Same pool contract as EdgeSamplingTrainer: num_threads <= 1 is the
  // sequential, bit-deterministic path and ignores any provided pool
  // entirely (the PR 2 bug class); num_threads > 1 borrows the caller's
  // persistent pool or owns a private one for the actor's lifetime. In
  // sharded mode the pool dispatches whole per-shard epochs instead of
  // HOGWILD sample ranges, so the result is thread-count-invariant there.
  if (options.num_threads > 1) {
    if (options.pool != nullptr) {
      model.pool_ = options.pool;
    } else {
      model.owned_pool_ = std::make_unique<ThreadPool>(
          static_cast<std::size_t>(options.num_threads));
      model.pool_ = model.owned_pool_.get();
    }
  }
  return model;
}

// Out-of-line: owned_pool_ holds a forward-declared ThreadPool.
OnlineActor::OnlineActor(OnlineActorOptions options)
    : options_(options),
      rng_(options.seed),
      snapshots_(std::make_unique<SnapshotStore>()),
      sharded_snapshots_(std::make_unique<ShardedSnapshotStore>()) {}
OnlineActor::~OnlineActor() = default;
OnlineActor::OnlineActor(OnlineActor&&) noexcept = default;
OnlineActor& OnlineActor::operator=(OnlineActor&&) noexcept = default;

VertexId OnlineActor::AddUnit(VertexType type, std::string name) {
  const VertexId id = static_cast<VertexId>(types_.size());
  types_.push_back(type);
  names_.push_back(std::move(name));
  const int owner = partitioner_.Assign(id, type);
  const int32_t local = map_.AddVertex(id, owner);
  // Row init consumes rng_ in global-id order regardless of owner, so the
  // initial vectors are identical across shard counts (the A/B anchor).
  center_.AppendRow(owner, &rng_);
  context_.AppendRow(owner, nullptr);
  // A new unit's row is dirty by definition: no previous snapshot chunk
  // can cover it. Resolve/AddUnit run on the ingest thread, outside any
  // hogwild region, so marking the merged set directly is safe. Both
  // publish paths' bookkeeping is kept current (global set for the flat
  // path, owner's local set for the sharded path).
  dirty_.Resize(static_cast<int32_t>(types_.size()));
  dirty_.Mark(id);
  owned_dirty_[static_cast<std::size_t>(owner)].Resize(local + 1);
  owned_dirty_[static_cast<std::size_t>(owner)].Mark(local);
  return id;
}

VertexId OnlineActor::ResolveSpatial(const GeoPoint& location) {
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < spatial_.size(); ++i) {
    const double d = Distance(location, spatial_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  if (best >= 0 && best_dist <= options_.new_spatial_hotspot_km) {
    return spatial_units_[best];
  }
  spatial_.push_back(location);
  const VertexId unit = AddUnit(
      VertexType::kLocation,
      StrPrintf("L%zu(%.2f,%.2f)", spatial_.size() - 1, location.x,
                location.y));
  spatial_units_.push_back(unit);
  return unit;
}

VertexId OnlineActor::ResolveTemporal(double timestamp) {
  const double hour = HourOfDay(timestamp);
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < temporal_.size(); ++i) {
    const double d = CircularHourDistance(hour, temporal_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  if (best >= 0 && best_dist <= options_.new_temporal_hotspot_hours) {
    return temporal_units_[best];
  }
  temporal_.push_back(hour);
  const int hh = static_cast<int>(hour);
  const int mm = static_cast<int>((hour - hh) * 60.0);
  const VertexId unit =
      AddUnit(VertexType::kTime,
              StrPrintf("T%zu(%02d:%02d)", temporal_.size() - 1, hh, mm));
  temporal_units_.push_back(unit);
  return unit;
}

VertexId OnlineActor::ResolveWord(int32_t word_id) {
  auto it = word_units_.find(word_id);
  if (it != word_units_.end()) return it->second;
  const VertexId unit =
      AddUnit(VertexType::kWord, StrPrintf("word%d", word_id));
  word_units_.emplace(word_id, unit);
  return unit;
}

VertexId OnlineActor::ResolveUser(int64_t user_id) {
  auto it = user_units_.find(user_id);
  if (it != user_units_.end()) return it->second;
  const VertexId unit = AddUnit(
      VertexType::kUser,
      StrPrintf("user%lld", static_cast<long long>(user_id)));
  user_units_.emplace(user_id, unit);
  return unit;
}

void OnlineActor::AccumulateEdge(VertexId a, VertexId b) {
  if (a == b || a == kInvalidVertex || b == kInvalidVertex) return;
  auto type = EdgeTypeBetween(types_[a], types_[b]);
  if (!type.ok()) return;
  // Local-write replication: the edge lands in every distinct owner's
  // replica store (one store when both endpoints share a shard).
  edges_[static_cast<int>(*type)].Accumulate(a, b, map_);
}

void OnlineActor::DecayEdges() {
  if (options_.decay_per_batch >= 1.0) return;
  for (auto& store : edges_) store.Decay(options_.decay_per_batch);
}

std::size_t OnlineActor::num_live_edges() const {
  std::size_t total = 0;
  for (const auto& store : edges_) total += store.SizeUnique(map_);
  return total;
}

Status OnlineActor::Ingest(const std::vector<TokenizedRecord>& batch) {
  // Recency decay happens before the new co-occurrences arrive, so the
  // newest batch always carries full weight. An empty batch is a valid
  // pure-decay tick (sparse-stream mode): a time slice passed with no
  // observations, so weights fade and training continues on the decayed
  // distribution. Because uniform decay never bumps an edge store's
  // version(), RefreshSamplers short-circuits and the tick skips every
  // alias-table rebuild — the accumulate loop below is simply empty.
  DecayEdges();

  for (const TokenizedRecord& rec : batch) {
    const VertexId t = ResolveTemporal(rec.timestamp);
    const VertexId l = ResolveSpatial(rec.location);
    std::vector<VertexId> words;
    words.reserve(rec.word_ids.size());
    for (int32_t w : rec.word_ids) words.push_back(ResolveWord(w));

    AccumulateEdge(t, l);
    for (VertexId w : words) {
      AccumulateEdge(l, w);
      AccumulateEdge(w, t);
    }
    for (std::size_t i = 0; i < words.size(); ++i) {
      for (std::size_t j = i + 1; j < words.size(); ++j) {
        AccumulateEdge(words[i], words[j]);
      }
    }
    if (options_.use_user_edges) {
      auto link_user = [&](int64_t user_id) {
        const VertexId u = ResolveUser(user_id);
        AccumulateEdge(u, t);
        AccumulateEdge(u, l);
        for (VertexId w : words) AccumulateEdge(u, w);
      };
      link_user(rec.user_id);
      for (int64_t m : rec.mentioned_user_ids) {
        link_user(m);
        AccumulateEdge(ResolveUser(rec.user_id), ResolveUser(m));
      }
    }
  }
  ++batches_;
  return TrainBatch();
}

Status OnlineActor::RefreshSamplers(int e, int s) {
  OnlineEdgeStore& store = edges_[e].shard(s);
  SamplerCache& cache = samplers_[e][static_cast<std::size_t>(s)];
  if (!options_.incremental_sampler) {
    // A/B lever: reconstruct from scratch every batch, releasing storage,
    // as the pre-port implementation did.
    cache = SamplerCache();
  }
  if (cache.built && cache.version == store.version()) {
    // Pure-decay batch for this type: uniform decay preserves the relative
    // distribution, so the cached tables are still exact.
    return Status::OK();
  }
  // The alias table over raw weights samples the *decayed* distribution
  // exactly (uniform scale cancels in the normalization).
  ACTOR_RETURN_NOT_OK(cache.edge_table.Rebuild(store.raw_weights()));
  for (auto& noise : cache.noise) {
    noise.candidates.clear();
    noise.weights.clear();
    noise.valid = false;
  }
  for (const auto& [v, d] : store.raw_degrees()) {
    // Negative draws must resolve to writable rows, so noise candidates
    // are restricted to shard-owned vertices (every vertex at one shard).
    if (map_.owner(v) != s) continue;
    NoiseTable& noise = cache.noise[static_cast<int>(types_[v])];
    noise.candidates.push_back(v);
    noise.weights.push_back(std::pow(d, 0.75));
  }
  for (auto& noise : cache.noise) {
    if (noise.candidates.empty()) continue;
    ACTOR_RETURN_NOT_OK(noise.table.Rebuild(noise.weights));
    noise.valid = true;
  }
  cache.built = true;
  cache.version = store.version();
  return Status::OK();
}

Status OnlineActor::TrainBatch() {
  if (sharded_) return TrainBatchSharded();
  // Legacy unsharded path: the whole model lives in shard 0, trained by
  // splitting each type's sample budget across pool workers (HOGWILD).
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    const OnlineEdgeStore& store = edges_[e].shard(0);
    if (store.empty()) continue;
    ACTOR_RETURN_NOT_OK(RefreshSamplers(e, 0));
    // Both directions of every undirected edge carry the per-edge budget,
    // as in the pre-port flattening.
    const auto samples = static_cast<int64_t>(
        options_.samples_per_edge_per_batch * 2.0 *
        static_cast<double>(store.size()));
    if (samples <= 0) continue;
    const uint64_t step = train_steps_;
    const std::size_t dim = static_cast<std::size_t>(options_.dim);
    if (pool_ == nullptr || pool_->num_threads() == 1) {
      // Sequential path: no concurrent markers, mark the merged set.
      std::vector<float> grad(dim);
      TrainTypeShard(e, samples, ShardSeed(options_.seed, step, 0), &dirty_,
                     grad.data());
    } else {
      shard_dirty_.resize(pool_->num_threads());
      for (auto& s : shard_dirty_) {
        s.Resize(num_units());
        s.Clear();
      }
      // Per-shard gradient scratch, allocated at the dispatch boundary:
      // the shard bodies themselves are allocation-free (hot-path rule).
      std::vector<float> shard_grad(pool_->num_threads() * dim);
      float* const grad_base = shard_grad.data();
      pool_->ShardedRange(
          0, static_cast<std::size_t>(samples),
          [this, e, step, grad_base, dim](int shard, std::size_t lo,
                                          std::size_t hi) {
            TrainTypeShard(e, static_cast<int64_t>(hi - lo),
                           ShardSeed(options_.seed, step, shard),
                           &shard_dirty_[static_cast<std::size_t>(shard)],
                           grad_base + static_cast<std::size_t>(shard) * dim);
          });
      // Batch barrier: ShardedRange returned, the shard-local sets are
      // published to the ingest thread — fold them into the merged set.
      for (const auto& s : shard_dirty_) dirty_.MergeFrom(s);
    }
    train_steps_ += static_cast<uint64_t>(samples);
  }
  // HOGWILD updates cannot be checked per-step without serializing the
  // shards; sweep both matrices for NaN/inf after every batch in debug
  // builds instead (same policy as EdgeSamplingTrainer).
  ACTOR_DCHECK(center_.DebugValidate());
  ACTOR_DCHECK(context_.DebugValidate());
  return Status::OK();
}

// Runs concurrently on pool workers (the analyzer derives the HOGWILD
// scope from the ShardedRange dispatch): shared row access must go through
// the kernel API or RelaxedLoad/RelaxedStore, and the body is
// allocation-free — `grad` scratch is owned by the dispatch site.
void OnlineActor::TrainTypeShard(int e, int64_t num_samples, uint64_t seed,
                                 DirtyRowSet* dirty, float* grad) {
  Rng rng(seed);
  const OnlineEdgeStore& store = edges_[e].shard(0);
  const SamplerCache& cache = samplers_[e][0];
  EmbeddingMatrix& center = center_.shard(0);
  EmbeddingMatrix& context = context_.shard(0);
  // Decayed-weight / alias-mass consistency: the sampler must describe
  // exactly the live edge set, or draws would index dropped slots.
  ACTOR_DCHECK(cache.built && cache.edge_table.size() == store.size())
      << "sampler for edge type " << e << " covers "
      << cache.edge_table.size() << " edges, store holds " << store.size();
  const std::vector<VertexId>& src = store.src();
  const std::vector<VertexId>& dst = store.dst();
  const std::size_t dim = static_cast<std::size_t>(options_.dim);
  const float lr = options_.learning_rate;

  // Block-wise sampling with software prefetch, as in
  // EdgeSamplingTrainer::TrainShard: the random center/context row
  // accesses of block i overlap the alias draws of block i+1. The low bit
  // of each buffered entry is the edge orientation (undirected edges are
  // stored once; each draw picks a direction uniformly, which matches the
  // pre-port both-directions flattening in distribution).
  constexpr int64_t kBlock = 64;
  std::array<std::size_t, kBlock> idx_buf;
  for (int64_t base = 0; base < num_samples; base += kBlock) {
    const int64_t block = std::min<int64_t>(kBlock, num_samples - base);
    for (int64_t i = 0; i < block; ++i) {
      const std::size_t idx = cache.edge_table.Sample(rng);
      const std::size_t flip = rng.Next() & 1;
      idx_buf[static_cast<std::size_t>(i)] = (idx << 1) | flip;
      PrefetchRow(center.row(flip ? dst[idx] : src[idx]), dim);
      PrefetchRow(context.row(flip ? src[idx] : dst[idx]), dim);
    }
    for (int64_t i = 0; i < block; ++i) {
      const std::size_t packed = idx_buf[static_cast<std::size_t>(i)];
      const std::size_t idx = packed >> 1;
      const bool flip = (packed & 1) != 0;
      const VertexId u = flip ? dst[idx] : src[idx];
      const VertexId v = flip ? src[idx] : dst[idx];
      const NoiseTable& noise = cache.noise[static_cast<int>(types_[v])];
      if (!noise.valid) continue;
      Zero(grad, dim);
      // Dirty tracking marks the rows this step mutates — u (center), v
      // and every negative draw (context) — into the shard-local set
      // `dirty` points at, never a shared one (R4 discipline).
      NegativeSamplingUpdate(
          center.row(u), v, options_.negatives, lr, &context, sigmoid_,
          rng,
          [&noise, dirty](Rng& r) {
            const VertexId n = noise.candidates[noise.table.Sample(r)];
            dirty->Mark(n);
            return n;
          },
          grad);
      Add(grad, center.row(u), dim);
      dirty->Mark(u);
      dirty->Mark(v);
    }
  }
}

Status OnlineActor::TrainBatchSharded() {
  // Batch barrier, part 1: every shard gets a fresh read-snapshot of the
  // context rows of remote vertices its edges touch.
  RefreshRemoteTiles();
  const std::size_t dim = static_cast<std::size_t>(options_.dim);
  std::vector<int64_t> samples(static_cast<std::size_t>(shards_), 0);
  std::vector<float> shard_grad(static_cast<std::size_t>(shards_) * dim);
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    if (edges_[e].empty()) continue;
    // Sampler refresh + budget sizing happen on the ingest thread (may
    // allocate); each shard's budget mirrors the unsharded formula over
    // its own replica store, so a cross-shard edge — present in both
    // owners' stores but trained only in its locally-centered orientation
    // by each — receives the same 2x-per-edge budget in total, split by
    // ownership (docs/sharding.md).
    int64_t total = 0;
    for (int s = 0; s < shards_; ++s) {
      const OnlineEdgeStore& store = edges_[e].shard(s);
      if (store.empty()) {
        samples[static_cast<std::size_t>(s)] = 0;
        continue;
      }
      ACTOR_RETURN_NOT_OK(RefreshSamplers(e, s));
      const auto n = static_cast<int64_t>(
          options_.samples_per_edge_per_batch * 2.0 *
          static_cast<double>(store.size()));
      samples[static_cast<std::size_t>(s)] = n;
      total += n;
    }
    if (total <= 0) continue;
    const uint64_t step = train_steps_;
    float* const grad_base = shard_grad.data();
    const int64_t* const samples_base = samples.data();
    // One epoch per shard: each epoch writes only shard-owned rows and its
    // own dirty set, so the epochs are mutually write-isolated and the
    // result is bit-identical whether they run sequentially or on the
    // pool — sharded training is deterministic at ANY thread count.
    if (pool_ == nullptr || shards_ == 1) {
      for (int s = 0; s < shards_; ++s) {
        if (samples[static_cast<std::size_t>(s)] <= 0) continue;
        TrainShardEpoch(e, s, samples[static_cast<std::size_t>(s)],
                        ShardSeed(options_.seed, step, static_cast<uint64_t>(s)),
                        &owned_dirty_[static_cast<std::size_t>(s)],
                        grad_base + static_cast<std::size_t>(s) * dim);
      }
    } else {
      pool_->ParallelFor(
          0, static_cast<std::size_t>(shards_),
          [this, e, step, grad_base, samples_base, dim](std::size_t s) {
            if (samples_base[s] <= 0) return;
            TrainShardEpoch(e, static_cast<int>(s), samples_base[s],
                            ShardSeed(options_.seed, step, s),
                            &owned_dirty_[s], grad_base + s * dim);
          });
    }
    train_steps_ += static_cast<uint64_t>(total);
  }
  ACTOR_DCHECK(center_.DebugValidate());
  ACTOR_DCHECK(context_.DebugValidate());
  return Status::OK();
}

// May run concurrently with the other shards' epochs (ParallelFor
// dispatch), but every write lands in shard-s-owned state: center/context
// rows of owned vertices, the private remote-tile copies, and this shard's
// own dirty set. Allocation-free like TrainTypeShard.
void OnlineActor::TrainShardEpoch(int e, int s, int64_t num_samples,
                                  uint64_t seed, DirtyRowSet* dirty,
                                  float* grad) {
  Rng rng(seed);
  const OnlineEdgeStore& store = edges_[e].shard(s);
  const SamplerCache& cache = samplers_[e][static_cast<std::size_t>(s)];
  EmbeddingMatrix& center = center_.shard(s);
  EmbeddingMatrix& context = context_.shard(s);
  RemoteTileCache& tiles = tiles_[static_cast<std::size_t>(s)];
  ACTOR_DCHECK(cache.built && cache.edge_table.size() == store.size())
      << "sampler for edge type " << e << " shard " << s << " covers "
      << cache.edge_table.size() << " edges, store holds " << store.size();
  const std::vector<VertexId>& src = store.src();
  const std::vector<VertexId>& dst = store.dst();
  const std::size_t dim = static_cast<std::size_t>(options_.dim);
  const float lr = options_.learning_rate;

  // Identical draw structure to TrainTypeShard (block-buffered alias draws,
  // orientation from the RNG low bit), so at one shard — same store, same
  // seed stream, owner checks never firing, local ids equal to global ids —
  // the two trainers consume the RNG identically and write bit-identical
  // updates (the shards=1 A/B identity of shard_online_actor_test).
  constexpr int64_t kBlock = 64;
  std::array<std::size_t, kBlock> idx_buf;
  for (int64_t base = 0; base < num_samples; base += kBlock) {
    const int64_t block = std::min<int64_t>(kBlock, num_samples - base);
    for (int64_t i = 0; i < block; ++i) {
      const std::size_t idx = cache.edge_table.Sample(rng);
      const std::size_t flip = rng.Next() & 1;
      idx_buf[static_cast<std::size_t>(i)] = (idx << 1) | flip;
      const VertexId u = flip ? dst[idx] : src[idx];
      // Prefetch only steps that will actually train (center owned here);
      // prefetching consumes no RNG, so skipping is identity-neutral.
      if (map_.owner(u) == s) {
        const VertexId v = flip ? src[idx] : dst[idx];
        PrefetchRow(center.row(map_.local_row(u)), dim);
        PrefetchRow(map_.owner(v) == s ? context.row(map_.local_row(v))
                                       : tiles.row(v),
                    dim);
      }
    }
    for (int64_t i = 0; i < block; ++i) {
      const std::size_t packed = idx_buf[static_cast<std::size_t>(i)];
      const std::size_t idx = packed >> 1;
      const bool flip = (packed & 1) != 0;
      const VertexId u = flip ? dst[idx] : src[idx];
      const VertexId v = flip ? src[idx] : dst[idx];
      // Ownership gate: this shard trains only orientations whose center
      // endpoint it owns; the co-owner trains the other orientation from
      // its replica. Consumes no RNG, so shards stay stream-aligned.
      if (map_.owner(u) != s) continue;
      const NoiseTable& noise = cache.noise[static_cast<int>(types_[v])];
      if (!noise.valid) continue;
      Zero(grad, dim);
      const int32_t lu = map_.local_row(u);
      // The positive context row: owned rows update in place; a remote
      // vertex's row is the private tile copy, whose delta is discarded at
      // the next barrier (freshness contract in docs/sharding.md).
      float* const pos_ctx = map_.owner(v) == s
                                 ? context.row(map_.local_row(v))
                                 : tiles.row(v);
      // Negatives come from this shard's noise table, which holds owned
      // vertices only — every negative context row is writable locally.
      NegativeSamplingUpdateRows(
          center.row(lu), v, pos_ctx, dim, options_.negatives, lr, sigmoid_,
          rng,
          [&noise, dirty, this](Rng& r) {
            const VertexId n = noise.candidates[noise.table.Sample(r)];
            dirty->Mark(map_.local_row(n));
            return n;
          },
          [&context, this](VertexId x) {
            return context.row(map_.local_row(x));
          },
          grad);
      Add(grad, center.row(lu), dim);
      dirty->Mark(lu);
      if (map_.owner(v) == s) dirty->Mark(map_.local_row(v));
    }
  }
}

void OnlineActor::RefreshRemoteTiles() {
  if (shards_ == 1) return;  // no remote vertices exist
  for (int s = 0; s < shards_; ++s) {
    RemoteTileCache& tiles = tiles_[static_cast<std::size_t>(s)];
    for (int e = 0; e < kNumEdgeTypes; ++e) {
      const OnlineEdgeStore& store = edges_[e].shard(s);
      const std::vector<VertexId>& src = store.src();
      const std::vector<VertexId>& dst = store.dst();
      for (std::size_t i = 0; i < src.size(); ++i) {
        for (const VertexId v : {src[i], dst[i]}) {
          const int owner = map_.owner(v);
          if (owner == s) continue;
          tiles.Put(v, context_.shard(owner).row(map_.local_row(v)));
        }
      }
    }
  }
}

VertexId OnlineActor::SpatialUnit(const GeoPoint& location) const {
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < spatial_.size(); ++i) {
    const double d = Distance(location, spatial_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best < 0 ? kInvalidVertex : spatial_units_[best];
}

VertexId OnlineActor::TemporalUnit(double timestamp) const {
  const double hour = HourOfDay(timestamp);
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < temporal_.size(); ++i) {
    const double d = CircularHourDistance(hour, temporal_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best < 0 ? kInvalidVertex : temporal_units_[best];
}

VertexId OnlineActor::WordUnit(int32_t word_id) const {
  auto it = word_units_.find(word_id);
  return it == word_units_.end() ? kInvalidVertex : it->second;
}

ModelSnapshot::OnlineCatalog OnlineActor::BuildCatalog() const {
  ModelSnapshot::OnlineCatalog catalog;
  catalog.types = types_;
  catalog.names = names_;
  catalog.spatial_centers = spatial_;
  catalog.spatial_units = spatial_units_;
  catalog.temporal_hours = temporal_;
  catalog.temporal_units = temporal_units_;
  catalog.word_units = word_units_;
  return catalog;
}

ModelSnapshot::OnlineCatalog OnlineActor::BuildShardCatalog(int s) const {
  ModelSnapshot::OnlineCatalog catalog;
  const std::vector<VertexId>& globals = map_.globals(s);
  catalog.types.reserve(globals.size());
  catalog.names.reserve(globals.size());
  for (const VertexId g : globals) {
    catalog.types.push_back(types_[static_cast<std::size_t>(g)]);
    catalog.names.push_back(names_[static_cast<std::size_t>(g)]);
  }
  return catalog;
}

std::shared_ptr<const ShardMapSnapshot> OnlineActor::BuildMapSnapshot()
    const {
  auto snap = std::make_shared<ShardMapSnapshot>();
  snap->num_shards = shards_;
  snap->owner = map_.owners();
  snap->local = map_.locals();
  snap->globals = map_.all_globals();
  snap->spatial_centers = spatial_;
  snap->spatial_units = spatial_units_;
  snap->temporal_hours = temporal_;
  snap->temporal_units = temporal_units_;
  snap->word_units = word_units_;
  return snap;
}

std::shared_ptr<const ModelSnapshot> OnlineActor::PublishSnapshot() {
  // Version stamping follows the OnlineEdgeStore scheme: each store's
  // version() bumps on every accumulate/drop, and the batch count covers
  // pure-decay ticks (which by design do not bump store versions). The sum
  // is monotone across Ingest() calls, so snapshot versions totally order
  // the published model states. (ShardedEdgeStore::version() sums its
  // replicas, which at one shard reduces to the flat scheme exactly.)
  uint64_t version = static_cast<uint64_t>(batches_);
  for (const auto& store : edges_) version += store.version();

  auto prev = snapshots_->Acquire();
  if (prev != nullptr && prev->version() == version) {
    // No Ingest() since the last publish — the model is unchanged, so the
    // published snapshot is still exact. Copying nothing makes publish a
    // cheap no-op at any cadence.
    return prev;
  }
  std::shared_ptr<const ModelSnapshot> snap;
  if (sharded_) {
    // Sharded mode keeps its dirty bookkeeping per shard in LOCAL row ids
    // (cleared by PublishShardedSnapshot), so the flat publish — the
    // bridge for unsharded consumers and the shards>1 equivalence tests —
    // is always a full gather + copy, and deliberately leaves every dirty
    // set untouched: the two publish paths may be mixed freely without
    // corrupting each other's deltas.
    snap = ModelSnapshot::FromOnline(center_.Gather(map_), BuildCatalog(),
                                     version);
  } else if (options_.delta_publish && prev != nullptr) {
    // Delta publish: copy only chunks containing rows dirtied since
    // `prev`, share the rest. An unchanged unit count means no unit was
    // added (the catalogue only grows through AddUnit), so the whole
    // catalogue state is shared too.
    const EmbeddingMatrix& center = center_.shard(0);
    snap = prev->num_units() == num_units()
               ? ModelSnapshot::FromOnlineDelta(center, version, prev, dirty_)
               : ModelSnapshot::FromOnlineDelta(center, version, prev, dirty_,
                                                BuildCatalog());
    // The new snapshot is exact, so nothing is dirty relative to it — the
    // next delta publish starts from a clean set.
    dirty_.Clear();
  } else {
    snap = ModelSnapshot::FromOnline(center_.shard(0), BuildCatalog(),
                                     version);
    dirty_.Clear();
  }
  snapshots_->Publish(snap);
  return snap;
}

std::shared_ptr<const ModelSnapshot> OnlineActor::CurrentSnapshot() const {
  return snapshots_->Acquire();
}

std::shared_ptr<const ShardedModelSnapshot>
OnlineActor::PublishShardedSnapshot() {
  uint64_t version = static_cast<uint64_t>(batches_);
  for (const auto& store : edges_) version += store.version();

  auto prev = sharded_snapshots_->Acquire();
  if (prev != nullptr && prev->version() == version) {
    return prev;
  }
  // The ownership map only grows through AddUnit, so an unchanged vertex
  // count means the frozen map (and its resolvers) is still exact — share
  // it across publishes, the same trick the flat delta path plays with its
  // catalogue state.
  std::shared_ptr<const ShardMapSnapshot> map_snap =
      (prev != nullptr && prev->map().num_vertices() == num_units())
          ? prev->map_ptr()
          : BuildMapSnapshot();

  std::vector<std::shared_ptr<const ModelSnapshot>> shards;
  shards.reserve(static_cast<std::size_t>(shards_));
  for (int s = 0; s < shards_; ++s) {
    const EmbeddingMatrix& center = center_.shard(s);
    DirtyRowSet& dirty = owned_dirty_[static_cast<std::size_t>(s)];
    const std::shared_ptr<const ModelSnapshot> prev_s =
        prev != nullptr ? prev->shard(s) : nullptr;
    std::shared_ptr<const ModelSnapshot> snap_s;
    // Per-shard delta against the shard's own previous snapshot, driven by
    // its persistent LOCAL-row dirty set. Only the sharded trainer marks
    // those sets row-by-row; the legacy trainer tracks global rows for the
    // flat publish path instead, so legacy mode always full-copies here.
    if (options_.delta_publish && sharded_ && prev_s != nullptr) {
      snap_s = prev_s->num_units() == center.rows()
                   ? ModelSnapshot::FromOnlineDelta(center, version, prev_s,
                                                    dirty)
                   : ModelSnapshot::FromOnlineDelta(center, version, prev_s,
                                                    dirty,
                                                    BuildShardCatalog(s));
    } else {
      snap_s = ModelSnapshot::FromOnline(center, BuildShardCatalog(s),
                                         version);
    }
    // Either way shard s's new snapshot is exact, so its dirty set resets.
    dirty.Clear();
    shards.push_back(std::move(snap_s));
  }
  auto snap = ShardedModelSnapshot::Make(std::move(shards),
                                         std::move(map_snap), version);
  sharded_snapshots_->Publish(snap);
  return snap;
}

std::shared_ptr<const ShardedModelSnapshot> OnlineActor::CurrentShardedSnapshot()
    const {
  return sharded_snapshots_->Acquire();
}

double OnlineActor::ScoreRecordAgainstUnit(const TokenizedRecord& record,
                                           VertexId candidate) const {
  if (candidate == kInvalidVertex) return -1e9;
  const std::size_t dim = static_cast<std::size_t>(options_.dim);
  std::vector<float> query(dim, 0.0f);
  int parts = 0;
  const VertexId t = TemporalUnit(record.timestamp);
  if (t != kInvalidVertex && t != candidate) {
    Add(CenterRow(t), query.data(), dim);
    ++parts;
  }
  const VertexId l = SpatialUnit(record.location);
  if (l != kInvalidVertex && l != candidate) {
    Add(CenterRow(l), query.data(), dim);
    ++parts;
  }
  std::vector<float> text(dim, 0.0f);
  int known = 0;
  for (int32_t w : record.word_ids) {
    const VertexId v = WordUnit(w);
    if (v == kInvalidVertex || v == candidate) continue;
    Add(CenterRow(v), text.data(), dim);
    ++known;
  }
  if (known > 0) {
    Scale(1.0f / static_cast<float>(known), text.data(), dim);
    Add(text.data(), query.data(), dim);
    ++parts;
  }
  if (parts == 0) return -1e9;
  return Cosine(query.data(), CenterRow(candidate), dim);
}

}  // namespace actor
