#include "core/online_actor.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "embedding/sgd.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace actor {

Result<OnlineActor> OnlineActor::Create(OnlineActorOptions options) {
  if (options.dim <= 0 || options.negatives < 1) {
    return Status::InvalidArgument("dim and negatives must be positive");
  }
  if (options.decay_per_batch <= 0.0 || options.decay_per_batch > 1.0) {
    return Status::InvalidArgument("decay_per_batch must be in (0, 1]");
  }
  if (options.samples_per_edge_per_batch <= 0.0) {
    return Status::InvalidArgument("samples_per_edge_per_batch must be > 0");
  }
  if (options.min_edge_weight <= 0.0) {
    return Status::InvalidArgument("min_edge_weight must be > 0");
  }
  OnlineActor model(options);
  model.center_ = EmbeddingMatrix(0, options.dim);
  model.context_ = EmbeddingMatrix(0, options.dim);
  for (auto& store : model.edges_) {
    store.set_min_weight(options.min_edge_weight);
  }
  // Same pool contract as EdgeSamplingTrainer: num_threads <= 1 is the
  // sequential, bit-deterministic path and ignores any provided pool
  // entirely (the PR 2 bug class); num_threads > 1 borrows the caller's
  // persistent pool or owns a private one for the actor's lifetime.
  if (options.num_threads > 1) {
    if (options.pool != nullptr) {
      model.pool_ = options.pool;
    } else {
      model.owned_pool_ = std::make_unique<ThreadPool>(
          static_cast<std::size_t>(options.num_threads));
      model.pool_ = model.owned_pool_.get();
    }
  }
  return model;
}

// Out-of-line: owned_pool_ holds a forward-declared ThreadPool.
OnlineActor::OnlineActor(OnlineActorOptions options)
    : options_(options),
      rng_(options.seed),
      snapshots_(std::make_unique<SnapshotStore>()) {}
OnlineActor::~OnlineActor() = default;
OnlineActor::OnlineActor(OnlineActor&&) noexcept = default;
OnlineActor& OnlineActor::operator=(OnlineActor&&) noexcept = default;

VertexId OnlineActor::AddUnit(VertexType type, std::string name) {
  const VertexId id = static_cast<VertexId>(types_.size());
  types_.push_back(type);
  names_.push_back(std::move(name));
  center_.AppendRows(1, &rng_);
  context_.AppendRows(1, nullptr);
  // A new unit's row is dirty by definition: no previous snapshot chunk
  // can cover it. Resolve/AddUnit run on the ingest thread, outside any
  // hogwild region, so marking the merged set directly is safe.
  dirty_.Resize(static_cast<int32_t>(types_.size()));
  dirty_.Mark(id);
  return id;
}

VertexId OnlineActor::ResolveSpatial(const GeoPoint& location) {
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < spatial_.size(); ++i) {
    const double d = Distance(location, spatial_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  if (best >= 0 && best_dist <= options_.new_spatial_hotspot_km) {
    return spatial_units_[best];
  }
  spatial_.push_back(location);
  const VertexId unit = AddUnit(
      VertexType::kLocation,
      StrPrintf("L%zu(%.2f,%.2f)", spatial_.size() - 1, location.x,
                location.y));
  spatial_units_.push_back(unit);
  return unit;
}

VertexId OnlineActor::ResolveTemporal(double timestamp) {
  const double hour = HourOfDay(timestamp);
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < temporal_.size(); ++i) {
    const double d = CircularHourDistance(hour, temporal_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  if (best >= 0 && best_dist <= options_.new_temporal_hotspot_hours) {
    return temporal_units_[best];
  }
  temporal_.push_back(hour);
  const int hh = static_cast<int>(hour);
  const int mm = static_cast<int>((hour - hh) * 60.0);
  const VertexId unit =
      AddUnit(VertexType::kTime,
              StrPrintf("T%zu(%02d:%02d)", temporal_.size() - 1, hh, mm));
  temporal_units_.push_back(unit);
  return unit;
}

VertexId OnlineActor::ResolveWord(int32_t word_id) {
  auto it = word_units_.find(word_id);
  if (it != word_units_.end()) return it->second;
  const VertexId unit =
      AddUnit(VertexType::kWord, StrPrintf("word%d", word_id));
  word_units_.emplace(word_id, unit);
  return unit;
}

VertexId OnlineActor::ResolveUser(int64_t user_id) {
  auto it = user_units_.find(user_id);
  if (it != user_units_.end()) return it->second;
  const VertexId unit = AddUnit(
      VertexType::kUser,
      StrPrintf("user%lld", static_cast<long long>(user_id)));
  user_units_.emplace(user_id, unit);
  return unit;
}

void OnlineActor::AccumulateEdge(VertexId a, VertexId b) {
  if (a == b || a == kInvalidVertex || b == kInvalidVertex) return;
  auto type = EdgeTypeBetween(types_[a], types_[b]);
  if (!type.ok()) return;
  edges_[static_cast<int>(*type)].Accumulate(a, b);
}

void OnlineActor::DecayEdges() {
  if (options_.decay_per_batch >= 1.0) return;
  for (auto& store : edges_) store.Decay(options_.decay_per_batch);
}

std::size_t OnlineActor::num_live_edges() const {
  std::size_t total = 0;
  for (const auto& store : edges_) total += store.size();
  return total;
}

Status OnlineActor::Ingest(const std::vector<TokenizedRecord>& batch) {
  // Recency decay happens before the new co-occurrences arrive, so the
  // newest batch always carries full weight. An empty batch is a valid
  // pure-decay tick (sparse-stream mode): a time slice passed with no
  // observations, so weights fade and training continues on the decayed
  // distribution. Because uniform decay never bumps an edge store's
  // version(), RefreshSamplers short-circuits and the tick skips every
  // alias-table rebuild — the accumulate loop below is simply empty.
  DecayEdges();

  for (const TokenizedRecord& rec : batch) {
    const VertexId t = ResolveTemporal(rec.timestamp);
    const VertexId l = ResolveSpatial(rec.location);
    std::vector<VertexId> words;
    words.reserve(rec.word_ids.size());
    for (int32_t w : rec.word_ids) words.push_back(ResolveWord(w));

    AccumulateEdge(t, l);
    for (VertexId w : words) {
      AccumulateEdge(l, w);
      AccumulateEdge(w, t);
    }
    for (std::size_t i = 0; i < words.size(); ++i) {
      for (std::size_t j = i + 1; j < words.size(); ++j) {
        AccumulateEdge(words[i], words[j]);
      }
    }
    if (options_.use_user_edges) {
      auto link_user = [&](int64_t user_id) {
        const VertexId u = ResolveUser(user_id);
        AccumulateEdge(u, t);
        AccumulateEdge(u, l);
        for (VertexId w : words) AccumulateEdge(u, w);
      };
      link_user(rec.user_id);
      for (int64_t m : rec.mentioned_user_ids) {
        link_user(m);
        AccumulateEdge(ResolveUser(rec.user_id), ResolveUser(m));
      }
    }
  }
  ++batches_;
  return TrainBatch();
}

Status OnlineActor::RefreshSamplers(int e) {
  OnlineEdgeStore& store = edges_[e];
  SamplerCache& cache = samplers_[e];
  if (!options_.incremental_sampler) {
    // A/B lever: reconstruct from scratch every batch, releasing storage,
    // as the pre-port implementation did.
    cache = SamplerCache();
  }
  if (cache.built && cache.version == store.version()) {
    // Pure-decay batch for this type: uniform decay preserves the relative
    // distribution, so the cached tables are still exact.
    return Status::OK();
  }
  // The alias table over raw weights samples the *decayed* distribution
  // exactly (uniform scale cancels in the normalization).
  ACTOR_RETURN_NOT_OK(cache.edge_table.Rebuild(store.raw_weights()));
  for (auto& noise : cache.noise) {
    noise.candidates.clear();
    noise.weights.clear();
    noise.valid = false;
  }
  for (const auto& [v, d] : store.raw_degrees()) {
    NoiseTable& noise = cache.noise[static_cast<int>(types_[v])];
    noise.candidates.push_back(v);
    noise.weights.push_back(std::pow(d, 0.75));
  }
  for (auto& noise : cache.noise) {
    if (noise.candidates.empty()) continue;
    ACTOR_RETURN_NOT_OK(noise.table.Rebuild(noise.weights));
    noise.valid = true;
  }
  cache.built = true;
  cache.version = store.version();
  return Status::OK();
}

Status OnlineActor::TrainBatch() {
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    const OnlineEdgeStore& store = edges_[e];
    if (store.empty()) continue;
    ACTOR_RETURN_NOT_OK(RefreshSamplers(e));
    // Both directions of every undirected edge carry the per-edge budget,
    // as in the pre-port flattening.
    const auto samples = static_cast<int64_t>(
        options_.samples_per_edge_per_batch * 2.0 *
        static_cast<double>(store.size()));
    if (samples <= 0) continue;
    const uint64_t step = train_steps_;
    const std::size_t dim = static_cast<std::size_t>(options_.dim);
    if (pool_ == nullptr || pool_->num_threads() == 1) {
      // Sequential path: no concurrent markers, mark the merged set.
      std::vector<float> grad(dim);
      TrainTypeShard(e, samples, ShardSeed(options_.seed, step, 0), &dirty_,
                     grad.data());
    } else {
      shard_dirty_.resize(pool_->num_threads());
      for (auto& s : shard_dirty_) {
        s.Resize(num_units());
        s.Clear();
      }
      // Per-shard gradient scratch, allocated at the dispatch boundary:
      // the shard bodies themselves are allocation-free (hot-path rule).
      std::vector<float> shard_grad(pool_->num_threads() * dim);
      float* const grad_base = shard_grad.data();
      pool_->ShardedRange(
          0, static_cast<std::size_t>(samples),
          [this, e, step, grad_base, dim](int shard, std::size_t lo,
                                          std::size_t hi) {
            TrainTypeShard(e, static_cast<int64_t>(hi - lo),
                           ShardSeed(options_.seed, step, shard),
                           &shard_dirty_[static_cast<std::size_t>(shard)],
                           grad_base + static_cast<std::size_t>(shard) * dim);
          });
      // Batch barrier: ShardedRange returned, the shard-local sets are
      // published to the ingest thread — fold them into the merged set.
      for (const auto& s : shard_dirty_) dirty_.MergeFrom(s);
    }
    train_steps_ += static_cast<uint64_t>(samples);
  }
  // HOGWILD updates cannot be checked per-step without serializing the
  // shards; sweep both matrices for NaN/inf after every batch in debug
  // builds instead (same policy as EdgeSamplingTrainer).
  ACTOR_DCHECK(center_.DebugValidate());
  ACTOR_DCHECK(context_.DebugValidate());
  return Status::OK();
}

// Runs concurrently on pool workers (the analyzer derives the HOGWILD
// scope from the ShardedRange dispatch): shared row access must go through
// the kernel API or RelaxedLoad/RelaxedStore, and the body is
// allocation-free — `grad` scratch is owned by the dispatch site.
void OnlineActor::TrainTypeShard(int e, int64_t num_samples, uint64_t seed,
                                 DirtyRowSet* dirty, float* grad) {
  Rng rng(seed);
  const OnlineEdgeStore& store = edges_[e];
  const SamplerCache& cache = samplers_[e];
  // Decayed-weight / alias-mass consistency: the sampler must describe
  // exactly the live edge set, or draws would index dropped slots.
  ACTOR_DCHECK(cache.built && cache.edge_table.size() == store.size())
      << "sampler for edge type " << e << " covers "
      << cache.edge_table.size() << " edges, store holds " << store.size();
  const std::vector<VertexId>& src = store.src();
  const std::vector<VertexId>& dst = store.dst();
  const std::size_t dim = static_cast<std::size_t>(options_.dim);
  const float lr = options_.learning_rate;

  // Block-wise sampling with software prefetch, as in
  // EdgeSamplingTrainer::TrainShard: the random center/context row
  // accesses of block i overlap the alias draws of block i+1. The low bit
  // of each buffered entry is the edge orientation (undirected edges are
  // stored once; each draw picks a direction uniformly, which matches the
  // pre-port both-directions flattening in distribution).
  constexpr int64_t kBlock = 64;
  std::array<std::size_t, kBlock> idx_buf;
  for (int64_t base = 0; base < num_samples; base += kBlock) {
    const int64_t block = std::min<int64_t>(kBlock, num_samples - base);
    for (int64_t i = 0; i < block; ++i) {
      const std::size_t idx = cache.edge_table.Sample(rng);
      const std::size_t flip = rng.Next() & 1;
      idx_buf[static_cast<std::size_t>(i)] = (idx << 1) | flip;
      PrefetchRow(center_.row(flip ? dst[idx] : src[idx]), dim);
      PrefetchRow(context_.row(flip ? src[idx] : dst[idx]), dim);
    }
    for (int64_t i = 0; i < block; ++i) {
      const std::size_t packed = idx_buf[static_cast<std::size_t>(i)];
      const std::size_t idx = packed >> 1;
      const bool flip = (packed & 1) != 0;
      const VertexId u = flip ? dst[idx] : src[idx];
      const VertexId v = flip ? src[idx] : dst[idx];
      const NoiseTable& noise = cache.noise[static_cast<int>(types_[v])];
      if (!noise.valid) continue;
      Zero(grad, dim);
      // Dirty tracking marks the rows this step mutates — u (center), v
      // and every negative draw (context) — into the shard-local set
      // `dirty` points at, never a shared one (R4 discipline).
      NegativeSamplingUpdate(
          center_.row(u), v, options_.negatives, lr, &context_, sigmoid_,
          rng,
          [&noise, dirty](Rng& r) {
            const VertexId n = noise.candidates[noise.table.Sample(r)];
            dirty->Mark(n);
            return n;
          },
          grad);
      Add(grad, center_.row(u), dim);
      dirty->Mark(u);
      dirty->Mark(v);
    }
  }
}

VertexId OnlineActor::SpatialUnit(const GeoPoint& location) const {
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < spatial_.size(); ++i) {
    const double d = Distance(location, spatial_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best < 0 ? kInvalidVertex : spatial_units_[best];
}

VertexId OnlineActor::TemporalUnit(double timestamp) const {
  const double hour = HourOfDay(timestamp);
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < temporal_.size(); ++i) {
    const double d = CircularHourDistance(hour, temporal_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best < 0 ? kInvalidVertex : temporal_units_[best];
}

VertexId OnlineActor::WordUnit(int32_t word_id) const {
  auto it = word_units_.find(word_id);
  return it == word_units_.end() ? kInvalidVertex : it->second;
}

ModelSnapshot::OnlineCatalog OnlineActor::BuildCatalog() const {
  ModelSnapshot::OnlineCatalog catalog;
  catalog.types = types_;
  catalog.names = names_;
  catalog.spatial_centers = spatial_;
  catalog.spatial_units = spatial_units_;
  catalog.temporal_hours = temporal_;
  catalog.temporal_units = temporal_units_;
  catalog.word_units = word_units_;
  return catalog;
}

std::shared_ptr<const ModelSnapshot> OnlineActor::PublishSnapshot() {
  // Version stamping follows the OnlineEdgeStore scheme: each store's
  // version() bumps on every accumulate/drop, and the batch count covers
  // pure-decay ticks (which by design do not bump store versions). The sum
  // is monotone across Ingest() calls, so snapshot versions totally order
  // the published model states.
  uint64_t version = static_cast<uint64_t>(batches_);
  for (const auto& store : edges_) version += store.version();

  auto prev = snapshots_->Acquire();
  if (prev != nullptr && prev->version() == version) {
    // No Ingest() since the last publish — the model is unchanged, so the
    // published snapshot is still exact. Copying nothing makes publish a
    // cheap no-op at any cadence.
    return prev;
  }
  std::shared_ptr<const ModelSnapshot> snap;
  if (options_.delta_publish && prev != nullptr) {
    // Delta publish: copy only chunks containing rows dirtied since
    // `prev`, share the rest. An unchanged unit count means no unit was
    // added (the catalogue only grows through AddUnit), so the whole
    // catalogue state is shared too.
    snap = prev->num_units() == num_units()
               ? ModelSnapshot::FromOnlineDelta(center_, version, prev, dirty_)
               : ModelSnapshot::FromOnlineDelta(center_, version, prev, dirty_,
                                                BuildCatalog());
  } else {
    snap = ModelSnapshot::FromOnline(center_, BuildCatalog(), version);
  }
  // The new snapshot is exact, so nothing is dirty relative to it — the
  // next delta publish starts from a clean set.
  dirty_.Clear();
  snapshots_->Publish(snap);
  return snap;
}

std::shared_ptr<const ModelSnapshot> OnlineActor::CurrentSnapshot() const {
  return snapshots_->Acquire();
}

double OnlineActor::ScoreRecordAgainstUnit(const TokenizedRecord& record,
                                           VertexId candidate) const {
  if (candidate == kInvalidVertex) return -1e9;
  const std::size_t dim = static_cast<std::size_t>(options_.dim);
  std::vector<float> query(dim, 0.0f);
  int parts = 0;
  const VertexId t = TemporalUnit(record.timestamp);
  if (t != kInvalidVertex && t != candidate) {
    Add(center_.row(t), query.data(), dim);
    ++parts;
  }
  const VertexId l = SpatialUnit(record.location);
  if (l != kInvalidVertex && l != candidate) {
    Add(center_.row(l), query.data(), dim);
    ++parts;
  }
  std::vector<float> text(dim, 0.0f);
  int known = 0;
  for (int32_t w : record.word_ids) {
    const VertexId v = WordUnit(w);
    if (v == kInvalidVertex || v == candidate) continue;
    Add(center_.row(v), text.data(), dim);
    ++known;
  }
  if (known > 0) {
    Scale(1.0f / static_cast<float>(known), text.data(), dim);
    Add(text.data(), query.data(), dim);
    ++parts;
  }
  if (parts == 0) return -1e9;
  return Cosine(query.data(), center_.row(candidate), dim);
}

}  // namespace actor
