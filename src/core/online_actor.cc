#include "core/online_actor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "embedding/sgd.h"
#include "graph/alias_table.h"
#include "util/string_util.h"

namespace actor {
namespace {

uint64_t PackKey(VertexId u, VertexId v) {
  const uint64_t a = static_cast<uint32_t>(u < v ? u : v);
  const uint64_t b = static_cast<uint32_t>(u < v ? v : u);
  return (a << 32) | b;
}

}  // namespace

Result<OnlineActor> OnlineActor::Create(OnlineActorOptions options) {
  if (options.dim <= 0 || options.negatives < 1) {
    return Status::InvalidArgument("dim and negatives must be positive");
  }
  if (options.decay_per_batch <= 0.0 || options.decay_per_batch > 1.0) {
    return Status::InvalidArgument("decay_per_batch must be in (0, 1]");
  }
  if (options.samples_per_edge_per_batch <= 0.0) {
    return Status::InvalidArgument("samples_per_edge_per_batch must be > 0");
  }
  OnlineActor model(options);
  model.center_ = EmbeddingMatrix(0, options.dim);
  model.context_ = EmbeddingMatrix(0, options.dim);
  return model;
}

VertexId OnlineActor::AddUnit(VertexType type, std::string name) {
  const VertexId id = static_cast<VertexId>(types_.size());
  types_.push_back(type);
  names_.push_back(std::move(name));
  center_.AppendRows(1, &rng_);
  context_.AppendRows(1, nullptr);
  return id;
}

VertexId OnlineActor::ResolveSpatial(const GeoPoint& location) {
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < spatial_.size(); ++i) {
    const double d = Distance(location, spatial_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  if (best >= 0 && best_dist <= options_.new_spatial_hotspot_km) {
    return spatial_units_[best];
  }
  spatial_.push_back(location);
  const VertexId unit = AddUnit(
      VertexType::kLocation,
      StrPrintf("L%zu(%.2f,%.2f)", spatial_.size() - 1, location.x,
                location.y));
  spatial_units_.push_back(unit);
  return unit;
}

VertexId OnlineActor::ResolveTemporal(double timestamp) {
  const double hour = HourOfDay(timestamp);
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < temporal_.size(); ++i) {
    const double d = CircularHourDistance(hour, temporal_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  if (best >= 0 && best_dist <= options_.new_temporal_hotspot_hours) {
    return temporal_units_[best];
  }
  temporal_.push_back(hour);
  const int hh = static_cast<int>(hour);
  const int mm = static_cast<int>((hour - hh) * 60.0);
  const VertexId unit =
      AddUnit(VertexType::kTime,
              StrPrintf("T%zu(%02d:%02d)", temporal_.size() - 1, hh, mm));
  temporal_units_.push_back(unit);
  return unit;
}

VertexId OnlineActor::ResolveWord(int32_t word_id) {
  auto it = word_units_.find(word_id);
  if (it != word_units_.end()) return it->second;
  const VertexId unit =
      AddUnit(VertexType::kWord, StrPrintf("word%d", word_id));
  word_units_.emplace(word_id, unit);
  return unit;
}

VertexId OnlineActor::ResolveUser(int64_t user_id) {
  auto it = user_units_.find(user_id);
  if (it != user_units_.end()) return it->second;
  const VertexId unit = AddUnit(
      VertexType::kUser,
      StrPrintf("user%lld", static_cast<long long>(user_id)));
  user_units_.emplace(user_id, unit);
  return unit;
}

void OnlineActor::AccumulateEdge(VertexId a, VertexId b) {
  if (a == b || a == kInvalidVertex || b == kInvalidVertex) return;
  auto type = EdgeTypeBetween(types_[a], types_[b]);
  if (!type.ok()) return;
  edges_[static_cast<int>(*type)][PackKey(a, b)] += 1.0;
}

void OnlineActor::DecayEdges() {
  if (options_.decay_per_batch >= 1.0) return;
  for (auto& per_type : edges_) {
    for (auto it = per_type.begin(); it != per_type.end();) {
      it->second *= options_.decay_per_batch;
      if (it->second < options_.min_edge_weight) {
        it = per_type.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::size_t OnlineActor::num_live_edges() const {
  std::size_t total = 0;
  for (const auto& per_type : edges_) total += per_type.size();
  return total;
}

Status OnlineActor::Ingest(const std::vector<TokenizedRecord>& batch) {
  if (batch.empty()) {
    return Status::InvalidArgument("cannot ingest an empty batch");
  }
  // Recency decay happens before the new co-occurrences arrive, so the
  // newest batch always carries full weight.
  DecayEdges();

  for (const TokenizedRecord& rec : batch) {
    const VertexId t = ResolveTemporal(rec.timestamp);
    const VertexId l = ResolveSpatial(rec.location);
    std::vector<VertexId> words;
    words.reserve(rec.word_ids.size());
    for (int32_t w : rec.word_ids) words.push_back(ResolveWord(w));

    AccumulateEdge(t, l);
    for (VertexId w : words) {
      AccumulateEdge(l, w);
      AccumulateEdge(w, t);
    }
    for (std::size_t i = 0; i < words.size(); ++i) {
      for (std::size_t j = i + 1; j < words.size(); ++j) {
        AccumulateEdge(words[i], words[j]);
      }
    }
    if (options_.use_user_edges) {
      auto link_user = [&](int64_t user_id) {
        const VertexId u = ResolveUser(user_id);
        AccumulateEdge(u, t);
        AccumulateEdge(u, l);
        for (VertexId w : words) AccumulateEdge(u, w);
      };
      link_user(rec.user_id);
      for (int64_t m : rec.mentioned_user_ids) {
        link_user(m);
        AccumulateEdge(ResolveUser(rec.user_id), ResolveUser(m));
      }
    }
  }
  ++batches_;
  return TrainBatch();
}

Status OnlineActor::TrainBatch() {
  const std::size_t dim = static_cast<std::size_t>(options_.dim);
  std::vector<float> grad(dim);

  for (int e = 0; e < kNumEdgeTypes; ++e) {
    const auto& per_type = edges_[e];
    if (per_type.empty()) continue;

    // Flatten the live edges of this type and build sampling tables.
    std::vector<VertexId> src, dst;
    std::vector<double> weight;
    src.reserve(per_type.size() * 2);
    dst.reserve(per_type.size() * 2);
    weight.reserve(per_type.size() * 2);
    std::unordered_map<VertexId, double> degree;
    for (const auto& [key, w] : per_type) {
      const VertexId a = static_cast<VertexId>(key >> 32);
      const VertexId b = static_cast<VertexId>(key & 0xffffffffULL);
      src.push_back(a);
      dst.push_back(b);
      weight.push_back(w);
      src.push_back(b);
      dst.push_back(a);
      weight.push_back(w);
      degree[a] += w;
      degree[b] += w;
    }
    ACTOR_ASSIGN_OR_RETURN(AliasTable edge_table, AliasTable::Create(weight));

    // Noise tables per context vertex type within this edge type.
    struct Noise {
      std::vector<VertexId> candidates;
      std::unique_ptr<AliasTable> table;
    };
    Noise noise[kNumVertexTypes];
    {
      std::vector<double> noise_weights[kNumVertexTypes];
      for (const auto& [v, d] : degree) {
        const int t = static_cast<int>(types_[v]);
        noise[t].candidates.push_back(v);
        noise_weights[t].push_back(std::pow(d, 0.75));
      }
      for (int t = 0; t < kNumVertexTypes; ++t) {
        if (noise[t].candidates.empty()) continue;
        ACTOR_ASSIGN_OR_RETURN(AliasTable table,
                               AliasTable::Create(noise_weights[t]));
        noise[t].table = std::make_unique<AliasTable>(std::move(table));
      }
    }

    const int64_t samples = static_cast<int64_t>(
        options_.samples_per_edge_per_batch * static_cast<double>(src.size()));
    for (int64_t i = 0; i < samples; ++i) {
      const std::size_t idx = edge_table.Sample(rng_);
      const VertexId u = src[idx];
      const VertexId v = dst[idx];
      const Noise& ctx_noise = noise[static_cast<int>(types_[v])];
      if (ctx_noise.table == nullptr) continue;
      Zero(grad.data(), dim);
      NegativeSamplingUpdate(
          center_.row(u), v, options_.negatives, options_.learning_rate,
          &context_, sigmoid_, rng_,
          [&ctx_noise](Rng& r) {
            return ctx_noise.candidates[ctx_noise.table->Sample(r)];
          },
          grad.data());
      Add(grad.data(), center_.row(u), dim);
    }
  }
  return Status::OK();
}

VertexId OnlineActor::SpatialUnit(const GeoPoint& location) const {
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < spatial_.size(); ++i) {
    const double d = Distance(location, spatial_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best < 0 ? kInvalidVertex : spatial_units_[best];
}

VertexId OnlineActor::TemporalUnit(double timestamp) const {
  const double hour = HourOfDay(timestamp);
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < temporal_.size(); ++i) {
    const double d = CircularHourDistance(hour, temporal_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best < 0 ? kInvalidVertex : temporal_units_[best];
}

VertexId OnlineActor::WordUnit(int32_t word_id) const {
  auto it = word_units_.find(word_id);
  return it == word_units_.end() ? kInvalidVertex : it->second;
}

double OnlineActor::ScoreRecordAgainstUnit(const TokenizedRecord& record,
                                           VertexId candidate) const {
  if (candidate == kInvalidVertex) return -1e9;
  const std::size_t dim = static_cast<std::size_t>(options_.dim);
  std::vector<float> query(dim, 0.0f);
  int parts = 0;
  const VertexId t = TemporalUnit(record.timestamp);
  if (t != kInvalidVertex && t != candidate) {
    Add(center_.row(t), query.data(), dim);
    ++parts;
  }
  const VertexId l = SpatialUnit(record.location);
  if (l != kInvalidVertex && l != candidate) {
    Add(center_.row(l), query.data(), dim);
    ++parts;
  }
  std::vector<float> text(dim, 0.0f);
  int known = 0;
  for (int32_t w : record.word_ids) {
    const VertexId v = WordUnit(w);
    if (v == kInvalidVertex || v == candidate) continue;
    Add(center_.row(v), text.data(), dim);
    ++known;
  }
  if (known > 0) {
    Scale(1.0f / static_cast<float>(known), text.data(), dim);
    Add(text.data(), query.data(), dim);
    ++parts;
  }
  if (parts == 0) return -1e9;
  return Cosine(query.data(), center_.row(candidate), dim);
}

}  // namespace actor
