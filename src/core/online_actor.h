#ifndef ACTOR_CORE_ONLINE_ACTOR_H_
#define ACTOR_CORE_ONLINE_ACTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/online_edge_store.h"
#include "data/record.h"
#include "data/vocabulary.h"
#include "embedding/dirty_rows.h"
#include "embedding/embedding_matrix.h"
#include "graph/alias_table.h"
#include "graph/types.h"
#include "serve/model_snapshot.h"
#include "shard/remote_tile_cache.h"
#include "shard/sharded_edge_store.h"
#include "shard/sharded_matrix.h"
#include "shard/sharded_snapshot.h"
#include "shard/vertex_partitioner.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/vec_math.h"

namespace actor {

class ThreadPool;

/// Options for the streaming extension (docs/streaming.md; modeled on the
/// recency-aware direction of the authors' ReAct [8], which the paper
/// lists as the online successor of CrossMap).
struct OnlineActorOptions {
  int32_t dim = 32;
  int negatives = 5;
  float learning_rate = 0.02f;
  uint64_t seed = 71;

  /// Per ingested batch, every live edge is sampled this many times in
  /// expectation. The main throughput/quality dial of the streaming path —
  /// see the tuning table in docs/streaming.md.
  double samples_per_edge_per_batch = 3.0;

  /// Recency: every edge weight is multiplied by this factor at each
  /// Ingest() call, so stale co-occurrences fade ("recency-aware"). 1.0
  /// disables forgetting.
  double decay_per_batch = 0.7;
  /// Edges whose decayed weight drops below this are dropped. Must be > 0
  /// when decay_per_batch < 1 (otherwise edges would decay forever without
  /// ever being reclaimed).
  double min_edge_weight = 0.05;

  /// A record farther than this from every spatial hotspot spawns a new
  /// hotspot at its location (km).
  double new_spatial_hotspot_km = 2.0;
  /// A record farther than this (circular hours) from every temporal
  /// hotspot spawns a new one.
  double new_temporal_hotspot_hours = 1.5;

  /// Train user edge types (UT/UW/UL) as in ACTOR's inter structure.
  bool use_user_edges = true;

  /// Worker threads for the per-batch re-embed phase. With
  /// num_threads <= 1 the re-embed loop is sequential and bit-deterministic
  /// for a fixed seed; with more threads the sample budget is sharded over
  /// the pool and the shared matrices are updated lock-free (HOGWILD, same
  /// contract as TrainOptions::num_threads).
  int num_threads = 1;
  /// Externally-owned persistent worker pool (the PR 1 substrate). When
  /// null and num_threads > 1 the actor creates its own pool, kept for the
  /// actor's lifetime. The pool must outlive the actor; when
  /// num_threads > 1 its worker count overrides num_threads, and
  /// num_threads <= 1 ignores the pool entirely (sequential,
  /// bit-deterministic path — the PR 2 contract).
  ThreadPool* pool = nullptr;

  /// When true (default), per-edge-type samplers are cached across batches
  /// and rebuilt in place only when the underlying decayed distribution
  /// actually changed (OnlineEdgeStore::version()). When false, every
  /// batch reconstructs all samplers from scratch — the pre-port behavior,
  /// kept as an A/B lever for bench/online_throughput.
  bool incremental_sampler = true;

  /// When true (default), PublishSnapshot() is a delta publish: only
  /// chunks of the center matrix containing rows dirtied since the last
  /// snapshot are copied, clean chunks and (when no unit was added) the
  /// whole unit catalogue are shared with it (docs/serving.md). When
  /// false, every publish is the pre-delta full copy — bit-identical
  /// snapshot contents and query results either way (locked in by
  /// serve_delta_publish_test); kept as an A/B lever for
  /// bench/query_throughput's publish_cost section. Governs
  /// PublishShardedSnapshot()'s per-shard deltas the same way.
  bool delta_publish = true;

  /// 0 (default) = the legacy unsharded pipeline: one flat allocation per
  /// matrix, the sample-split HOGWILD trainer, flat publish. >= 1 =
  /// ownership-partitioned mode (docs/sharding.md): a VertexPartitioner
  /// assigns every unit to one of `num_shards` shards, each shard trains
  /// its own rows in an independent epoch (cross-shard context rows
  /// resolved through a per-shard remote-tile cache refreshed at batch
  /// barriers), and PublishShardedSnapshot() emits per-shard chunk-COW
  /// snapshots behind one composite store. Sharded training writes only
  /// shard-owned state, so it is bit-deterministic at ANY num_threads —
  /// unlike the legacy HOGWILD path, which is deterministic only
  /// sequentially. num_shards=1 is the A/B lever: the sharded pipeline
  /// with one shard, proved bit-identical to the legacy path
  /// (shard_online_actor_test).
  int num_shards = 0;
  /// How vertex ids map to shards in sharded mode (hash by default).
  ShardStrategy shard_strategy = ShardStrategy::kHash;
};

/// Streaming hierarchical cross-modal embedding: ingests record batches,
/// maintains a decaying co-occurrence graph with a growing unit set
/// (hotspots, words, users), and refreshes the shared embedding space
/// after every batch. Units never seen again fade from the sampling
/// distribution but keep their vectors.
///
/// Each Ingest() runs the cycle described in docs/streaming.md:
///   decay -> resolve units -> accumulate co-occurrences ->
///   incremental sampler rebuild -> sharded re-embed.
/// The re-embed phase runs on the shared ThreadPool/SIMD substrate: sample
/// budgets are split with ThreadPool::ShardedRange, per-shard RNG streams
/// derive from ShardSeed, and all shared-row arithmetic goes through the
/// runtime-dispatched kernels in util/vec_math.h (so the TSan `relaxed`
/// backend covers the streaming path too).
class OnlineActor {
 public:
  /// Creates an empty model; the first Ingest() bootstraps everything.
  static Result<OnlineActor> Create(OnlineActorOptions options);

  ~OnlineActor();
  OnlineActor(OnlineActor&&) noexcept;
  OnlineActor& operator=(OnlineActor&&) noexcept;

  /// Ingests one batch of tokenized records (ids from a caller-owned,
  /// append-only vocabulary), updates the unit graph, and trains. An empty
  /// batch is a pure-decay tick (a time slice with no observations):
  /// existing edge weights decay, no accumulation happens, and training
  /// runs on the cached samplers — uniform decay preserves the sampling
  /// distribution, so no alias table is rebuilt.
  Status Ingest(const std::vector<TokenizedRecord>& batch);

  /// Number of Ingest() calls so far.
  int64_t batches_ingested() const { return batches_; }

  int32_t num_units() const { return static_cast<int32_t>(types_.size()); }
  std::size_t num_live_edges() const;
  std::size_t num_spatial_hotspots() const { return spatial_.size(); }
  std::size_t num_temporal_hotspots() const { return temporal_.size(); }

  /// True in ownership-partitioned mode (options.num_shards >= 1).
  bool sharded() const { return sharded_; }
  /// Physical shard count (1 in legacy mode).
  int num_shards() const { return shards_; }
  /// The live tile-ownership map (global id -> owner shard, local row).
  const ShardMap& shard_map() const { return map_; }

  /// The flat center matrix. Only meaningful when there is exactly one
  /// physical shard (legacy mode, or sharded mode with num_shards=1, where
  /// local ids equal global ids); sharded consumers use center_shard() /
  /// GatherCenter().
  const EmbeddingMatrix& center() const {
    ACTOR_DCHECK(shards_ == 1) << "center() needs a single shard; use "
                                  "center_shard()/GatherCenter()";
    return center_.shard(0);
  }
  /// Shard `s`'s center rows, indexed by shard-local row id.
  const EmbeddingMatrix& center_shard(int s) const {
    return center_.shard(s);
  }
  /// Flat copy of the center matrix in global-id order (O(units x dim)).
  EmbeddingMatrix GatherCenter() const { return center_.Gather(map_); }
  /// Distinct remote vertices shard `s`'s tile cache has held (sharded
  /// mode; 0 until a cross-shard edge appeared). Test/introspection only.
  std::size_t remote_tile_rows(int s) const { return tiles_[s].size(); }

  VertexType unit_type(VertexId v) const { return types_[v]; }
  const std::string& unit_name(VertexId v) const { return names_[v]; }

  /// Unit ids for modality values (kInvalidVertex when unseen).
  VertexId SpatialUnit(const GeoPoint& location) const;
  VertexId TemporalUnit(double timestamp) const;
  VertexId WordUnit(int32_t word_id) const;

  /// Cosine score of a record against the current space: mean of its
  /// resolvable unit vectors vs the candidate unit. Used by the
  /// prequential evaluation in bench/streaming_activity.
  double ScoreRecordAgainstUnit(const TokenizedRecord& record,
                                VertexId candidate) const;

  /// Publishes the current model as an immutable ModelSnapshot and
  /// installs it as the actor's current snapshot (docs/serving.md). With
  /// delta_publish (default) the cost is proportional to the rows the
  /// last batches touched — clean chunks and an unchanged catalogue are
  /// shared with the previous snapshot; with delta_publish=false every
  /// publish deep-copies O(units x dim). When the model version is
  /// unchanged since the last publish (no Ingest() in between) the
  /// already-published snapshot is returned as-is — a no-op publish that
  /// copies nothing. Call from the ingest thread only (the same thread
  /// that calls Ingest()); never concurrently with it.
  /// The snapshot version follows the OnlineEdgeStore::version() scheme:
  /// batches_ingested() plus the sum of the per-edge-type store versions,
  /// so any batch that changed the sampled distribution (and any batch at
  /// all, via the batch count) bumps it monotonically.
  std::shared_ptr<const ModelSnapshot> PublishSnapshot();

  /// Latest published snapshot (null before the first PublishSnapshot()).
  /// Safe from any thread, concurrently with Ingest()/PublishSnapshot():
  /// the slot swap is an atomic shared_ptr operation, and the snapshot
  /// itself is immutable — this is the race-free read path for serving
  /// queries against a live actor (see the tsan-labeled
  /// QueryDuringIngest smoke test).
  std::shared_ptr<const ModelSnapshot> CurrentSnapshot() const;

  /// Publishes the current model as a composite of per-shard chunk-COW
  /// ModelSnapshots plus a frozen ShardMapSnapshot, installed atomically
  /// as ONE pointer swap — readers never see shards at mixed versions. In
  /// sharded mode with delta_publish each shard deltas against its own
  /// previous snapshot using its per-shard dirty set; in legacy mode every
  /// shard (there is one) is a full copy, since the legacy trainer tracks
  /// dirtiness for the flat publish path only. Same no-op-at-unchanged-
  /// version and ingest-thread-only contract as PublishSnapshot(); the two
  /// publish paths keep independent dirty bookkeeping and may be mixed.
  std::shared_ptr<const ShardedModelSnapshot> PublishShardedSnapshot();

  /// Latest composite snapshot (null before the first
  /// PublishShardedSnapshot()). Safe from any thread, like
  /// CurrentSnapshot() — the read side of ShardedQueryDuringIngest.
  std::shared_ptr<const ShardedModelSnapshot> CurrentShardedSnapshot() const;

 private:
  /// Cached per-edge-type samplers, stamped with the store version they
  /// were built at. Rebuilt in place (allocation-free at steady state)
  /// only when the store's relative distribution changed.
  struct NoiseTable {
    std::vector<VertexId> candidates;
    std::vector<double> weights;  // degree^(3/4) scratch for rebuilds
    AliasTable table;
    bool valid = false;
  };
  struct SamplerCache {
    bool built = false;
    uint64_t version = 0;
    AliasTable edge_table;
    NoiseTable noise[kNumVertexTypes];
  };

  explicit OnlineActor(OnlineActorOptions options);  // out-of-line: pool_

  VertexId AddUnit(VertexType type, std::string name);
  /// Assign-or-spawn for the two hotspot families.
  VertexId ResolveSpatial(const GeoPoint& location);
  VertexId ResolveTemporal(double timestamp);
  VertexId ResolveWord(int32_t word_id);
  VertexId ResolveUser(int64_t user_id);

  void AccumulateEdge(VertexId a, VertexId b);
  void DecayEdges();
  Status TrainBatch();
  /// Brings samplers_[e][s] up to date with edges_[e].shard(s) (no-op when
  /// the store version matches — e.g. after pure-decay batches). Noise
  /// candidates are filtered to shard-owned vertices, so negative draws
  /// always resolve to writable local rows (a no-op filter at one shard).
  Status RefreshSamplers(int e, int s);
  /// One shard of the legacy re-embed phase for edge type e: `num_samples`
  /// SGD steps from the per-shard RNG stream seeded with `seed`. `dirty`
  /// is this shard's local dirty-row set (or the merged set directly on
  /// the sequential path) — never a set shared with another running shard.
  /// `grad` is caller-owned gradient scratch of length options_.dim (shard
  /// bodies run on the hot path and must not allocate).
  void TrainTypeShard(int e, int64_t num_samples, uint64_t seed,
                      DirtyRowSet* dirty, float* grad);
  /// Sharded mode: the whole batch cycle (remote-tile refresh, per-shard
  /// sampler refresh, one trainer epoch per shard per edge type).
  Status TrainBatchSharded();
  /// Shard `s`'s trainer epoch for edge type e: draws from the shard's own
  /// replica store, trains only orientations whose center endpoint it
  /// owns, resolves remote positive-context rows through tiles_[s], and
  /// marks `dirty` (= owned_dirty_[s], exclusively this shard's) with
  /// LOCAL row ids. Dispatched one shard per pool task; like
  /// TrainTypeShard the body is allocation-free.
  void TrainShardEpoch(int e, int s, int64_t num_samples, uint64_t seed,
                       DirtyRowSet* dirty, float* grad);
  /// Recopies every remote endpoint's context row into the owning shards'
  /// tile caches — the batch-barrier tile exchange (docs/sharding.md).
  void RefreshRemoteTiles();
  /// The copied resolver state a full (non-delta) publish adopts.
  ModelSnapshot::OnlineCatalog BuildCatalog() const;
  /// Shard `s`'s local catalogue: types/names of its units in local-row
  /// order. Resolver fields stay empty — global resolution lives in the
  /// ShardMapSnapshot.
  ModelSnapshot::OnlineCatalog BuildShardCatalog(int s) const;
  /// The frozen ownership map + global resolvers for a composite publish.
  std::shared_ptr<const ShardMapSnapshot> BuildMapSnapshot() const;
  /// Center row of a global unit id, whichever shard owns it.
  const float* CenterRow(VertexId v) const {
    return center_.shard(map_.owner(v)).row(map_.local_row(v));
  }

  OnlineActorOptions options_;
  Rng rng_;
  int64_t batches_ = 0;
  /// Total re-embed SGD steps scheduled so far; the per-(batch, edge type)
  /// component of ShardSeed.
  uint64_t train_steps_ = 0;

  /// Physical shard count: max(1, options.num_shards). Legacy mode runs
  /// the whole model in shard 0 (local ids == global ids).
  int shards_ = 1;
  /// True iff options.num_shards >= 1 (ownership-partitioned mode).
  bool sharded_ = false;
  VertexPartitioner partitioner_;
  ShardMap map_;

  // Unit catalogue (grows, never shrinks).
  std::vector<VertexType> types_;
  std::vector<std::string> names_;
  ShardedEmbeddingMatrix center_;
  ShardedEmbeddingMatrix context_;

  // Hotspot centers, index-aligned with their unit ids.
  std::vector<GeoPoint> spatial_;
  std::vector<VertexId> spatial_units_;
  std::vector<double> temporal_;  // hours
  std::vector<VertexId> temporal_units_;
  std::unordered_map<int32_t, VertexId> word_units_;
  std::unordered_map<int64_t, VertexId> user_units_;

  // Decaying undirected edge weights per edge type, in per-shard replica
  // stores with incremental sampler maintenance (docs/streaming.md,
  // docs/sharding.md). samplers_[e] holds one cache per shard, each stamped
  // against its own replica store; legacy mode uses samplers_[e][0].
  ShardedEdgeStore edges_[kNumEdgeTypes];
  std::vector<SamplerCache> samplers_[kNumEdgeTypes];

  /// Center/context rows (GLOBAL ids) mutated since the last flat publish
  /// (one union set): new units from AddUnit plus everything the legacy
  /// re-embed shards touched. Written only from the ingest thread outside
  /// hogwild regions; the shards mark shard_dirty_, merged here at the
  /// TrainBatch barrier. Sharded mode keeps it marked (AddUnit) so a flat
  /// PublishSnapshot stays correct, but the sharded publish path never
  /// reads or clears it.
  DirtyRowSet dirty_;
  std::vector<DirtyRowSet> shard_dirty_;  // per-shard scratch (legacy)
  /// Sharded mode: per-shard persistent dirty sets over LOCAL row ids,
  /// marked directly by each shard's single-writer epoch (no merge needed)
  /// and cleared by PublishShardedSnapshot's per-shard deltas.
  std::vector<DirtyRowSet> owned_dirty_;
  /// Per-shard read-only caches of remote vertices' context rows,
  /// refreshed at the batch barrier (RefreshRemoteTiles).
  std::vector<RemoteTileCache> tiles_;

  ThreadPool* pool_ = nullptr;              // null => sequential re-embed
  std::unique_ptr<ThreadPool> owned_pool_;  // backs pool_ when not borrowed

  /// Atomic slot for the latest published snapshot. unique_ptr because the
  /// store holds a std::atomic (non-movable) and OnlineActor is movable.
  std::unique_ptr<SnapshotStore> snapshots_;
  /// Atomic slot for the latest composite (per-shard) snapshot.
  std::unique_ptr<ShardedSnapshotStore> sharded_snapshots_;

  SigmoidTable sigmoid_;
};

}  // namespace actor

#endif  // ACTOR_CORE_ONLINE_ACTOR_H_
