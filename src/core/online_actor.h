#ifndef ACTOR_CORE_ONLINE_ACTOR_H_
#define ACTOR_CORE_ONLINE_ACTOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/record.h"
#include "data/vocabulary.h"
#include "embedding/embedding_matrix.h"
#include "graph/types.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/vec_math.h"

namespace actor {

/// Options for the streaming extension (DESIGN.md; modeled on the
/// recency-aware direction of the authors' ReAct [8], which the paper
/// lists as the online successor of CrossMap).
struct OnlineActorOptions {
  int32_t dim = 32;
  int negatives = 5;
  float learning_rate = 0.02f;
  uint64_t seed = 71;

  /// Per ingested batch, every live edge is sampled this many times in
  /// expectation.
  double samples_per_edge_per_batch = 3.0;

  /// Recency: every edge weight is multiplied by this factor at each
  /// Ingest() call, so stale co-occurrences fade ("recency-aware"). 1.0
  /// disables forgetting.
  double decay_per_batch = 0.7;
  /// Edges whose decayed weight drops below this are dropped.
  double min_edge_weight = 0.05;

  /// A record farther than this from every spatial hotspot spawns a new
  /// hotspot at its location (km).
  double new_spatial_hotspot_km = 2.0;
  /// A record farther than this (circular hours) from every temporal
  /// hotspot spawns a new one.
  double new_temporal_hotspot_hours = 1.5;

  /// Train user edge types (UT/UW/UL) as in ACTOR's inter structure.
  bool use_user_edges = true;
};

/// Streaming hierarchical cross-modal embedding: ingests record batches,
/// maintains a decaying co-occurrence graph with a growing unit set
/// (hotspots, words, users), and refreshes the shared embedding space
/// after every batch. Units never seen again fade from the sampling
/// distribution but keep their vectors.
class OnlineActor {
 public:
  /// Creates an empty model; the first Ingest() bootstraps everything.
  static Result<OnlineActor> Create(OnlineActorOptions options);

  /// Ingests one batch of tokenized records (ids from a caller-owned,
  /// append-only vocabulary), updates the unit graph, and trains.
  Status Ingest(const std::vector<TokenizedRecord>& batch);

  /// Number of Ingest() calls so far.
  int64_t batches_ingested() const { return batches_; }

  int32_t num_units() const { return static_cast<int32_t>(types_.size()); }
  std::size_t num_live_edges() const;
  std::size_t num_spatial_hotspots() const { return spatial_.size(); }
  std::size_t num_temporal_hotspots() const { return temporal_.size(); }

  const EmbeddingMatrix& center() const { return center_; }
  VertexType unit_type(VertexId v) const { return types_[v]; }
  const std::string& unit_name(VertexId v) const { return names_[v]; }

  /// Unit ids for modality values (kInvalidVertex when unseen).
  VertexId SpatialUnit(const GeoPoint& location) const;
  VertexId TemporalUnit(double timestamp) const;
  VertexId WordUnit(int32_t word_id) const;

  /// Cosine score of a record against the current space: mean of its
  /// resolvable unit vectors vs the candidate unit. Used by the
  /// prequential evaluation in bench/streaming_activity.
  double ScoreRecordAgainstUnit(const TokenizedRecord& record,
                                VertexId candidate) const;

 private:
  explicit OnlineActor(OnlineActorOptions options)
      : options_(options), rng_(options.seed) {}

  VertexId AddUnit(VertexType type, std::string name);
  /// Assign-or-spawn for the two hotspot families.
  VertexId ResolveSpatial(const GeoPoint& location);
  VertexId ResolveTemporal(double timestamp);
  VertexId ResolveWord(int32_t word_id);
  VertexId ResolveUser(int64_t user_id);

  void AccumulateEdge(VertexId a, VertexId b);
  void DecayEdges();
  Status TrainBatch();

  OnlineActorOptions options_;
  Rng rng_;
  int64_t batches_ = 0;

  // Unit catalogue (grows, never shrinks).
  std::vector<VertexType> types_;
  std::vector<std::string> names_;
  EmbeddingMatrix center_;
  EmbeddingMatrix context_;

  // Hotspot centers, index-aligned with their unit ids.
  std::vector<GeoPoint> spatial_;
  std::vector<VertexId> spatial_units_;
  std::vector<double> temporal_;  // hours
  std::vector<VertexId> temporal_units_;
  std::unordered_map<int32_t, VertexId> word_units_;
  std::unordered_map<int64_t, VertexId> user_units_;

  // Decaying undirected edge weights per edge type, keyed by packed pair.
  std::unordered_map<uint64_t, double> edges_[kNumEdgeTypes];

  SigmoidTable sigmoid_;
};

}  // namespace actor

#endif  // ACTOR_CORE_ONLINE_ACTOR_H_
