#ifndef ACTOR_CORE_META_GRAPH_H_
#define ACTOR_CORE_META_GRAPH_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/types.h"

namespace actor {

/// A meta-graph S = (X, A): a sub-graphical scheme of typed vertices with
/// an adjacency defined on them (paper Def. 6). M0 is the intra-record
/// meta-graph (the co-occurrence clique of T, L and the record's words);
/// M1-M6 are the inter-record meta-graphs: two users linked through the
/// user interaction graph, with a combination of unit types attached to
/// the mentioned user (paper Fig. 3b).
struct MetaGraph {
  std::string name;
  /// Typed vertex slots.
  std::vector<VertexType> vertices;
  /// Adjacency as index pairs into `vertices`.
  std::vector<std::pair<int, int>> edges;
  /// True when the scheme spans the user interaction layer.
  bool inter_record = false;

  /// Number of vertex slots of the given type.
  int CountType(VertexType t) const;

  /// Edge types traversed by this scheme (deduplicated).
  std::vector<EdgeType> CoveredEdgeTypes() const;
};

/// The intra-record meta-graph M0: T-L-W triangle plus the W-W link
/// (edge types {TL, LW, WT, WW} = M_intra).
MetaGraph IntraRecordMetaGraph();

/// The six inter-record meta-graphs M1..M6. Each contains the U-U mention
/// edge plus units attached to the mentioned user: M1 {T}, M2 {L}, M3 {W},
/// M4 {T,W}, M5 {L,W}, M6 {T,L}.
std::vector<MetaGraph> InterRecordMetaGraphs();

/// M_intra = {TL, LW, WT, WW} (Eq. (6)).
const std::vector<EdgeType>& IntraEdgeTypes();

/// M_inter = {UT, UW, UL} (Eq. (6)).
const std::vector<EdgeType>& InterEdgeTypes();

/// Counts instances of an inter-record meta-graph in the built graphs: one
/// instance per (record with a mention, mentioned user) pair where the
/// mentioned user also carries units of every type the scheme requires
/// (i.e. has positive degree in the corresponding U-edge types). Used by
/// tests and by the dataset-statistics harness; the count is the number of
/// high-order proximity paths the hierarchy can exploit.
int64_t CountInterRecordInstances(const BuiltGraphs& graphs,
                                  const MetaGraph& meta);

}  // namespace actor

#endif  // ACTOR_CORE_META_GRAPH_H_
