#include "core/online_edge_store.h"

#include <algorithm>
#include <cmath>

namespace actor {
namespace {

/// Below this scale the raw weights are within ~9 decades of the double
/// overflow cliff on long streams; fold the scale in well before that.
constexpr double kRenormScale = 1e-9;

}  // namespace

void OnlineEdgeStore::Accumulate(VertexId a, VertexId b, double w) {
  ACTOR_DCHECK(a != b) << "self-loop on vertex " << a;
  ACTOR_DCHECK(a != kInvalidVertex && b != kInvalidVertex)
      << "invalid endpoint (" << a << ", " << b << ")";
  ACTOR_DCHECK(w > 0.0) << "non-positive edge weight " << w;
  const double raw = w / scale_;
  const uint64_t key = PackKey(a, b);
  auto [it, inserted] =
      index_.emplace(key, static_cast<uint32_t>(src_.size()));
  if (inserted) {
    src_.push_back(a < b ? a : b);
    dst_.push_back(a < b ? b : a);
    raw_weight_.push_back(raw);
  } else {
    raw_weight_[it->second] += raw;
  }
  total_raw_ += raw;
  AddDegree(a, raw);
  AddDegree(b, raw);
  ++version_;
}

void OnlineEdgeStore::Decay(double factor) {
  ACTOR_DCHECK(factor > 0.0 && factor <= 1.0)
      << "decay factor must be in (0, 1], got " << factor;
  if (factor >= 1.0) return;  // never-forget mode: nothing decays or drops
  scale_ *= factor;

  // Drop edges whose effective weight fell below the threshold. The raw
  // threshold is hoisted so the sweep is one compare per edge. Degrees are
  // only decremented here; residue entries are purged in one pass below so
  // a vertex losing several edges is never erased mid-sweep.
  const double raw_min = min_weight_ / scale_;
  bool dropped = false;
  for (std::size_t i = 0; i < raw_weight_.size();) {
    if (raw_weight_[i] >= raw_min) {
      ++i;
      continue;
    }
    dropped = true;
    const double raw = raw_weight_[i];
    total_raw_ -= raw;
    raw_degree_[src_[i]] -= raw;
    raw_degree_[dst_[i]] -= raw;
    index_.erase(PackKey(src_[i], dst_[i]));
    const std::size_t last = raw_weight_.size() - 1;
    if (i != last) {
      src_[i] = src_[last];
      dst_[i] = dst_[last];
      raw_weight_[i] = raw_weight_[last];
      index_[PackKey(src_[i], dst_[i])] = static_cast<uint32_t>(i);
    }
    src_.pop_back();
    dst_.pop_back();
    raw_weight_.pop_back();
  }
  if (dropped) {
    // A vertex with any live incident edge keeps raw degree >= raw_min;
    // anything below half that quantum is subtraction residue of a vertex
    // whose edges all dropped.
    for (auto it = raw_degree_.begin(); it != raw_degree_.end();) {
      if (it->second < raw_min * 0.5) {
        it = raw_degree_.erase(it);
      } else {
        ++it;
      }
    }
    ++version_;
  }
  if (empty()) total_raw_ = 0.0;  // clear float residue on full drain
  RenormalizeIfNeeded();
  ACTOR_DCHECK(DebugCheckConsistent(/*after_decay=*/true));
}

double OnlineEdgeStore::EdgeWeight(VertexId a, VertexId b) const {
  const auto it = index_.find(PackKey(a, b));
  return it == index_.end() ? 0.0 : raw_weight_[it->second] * scale_;
}

void OnlineEdgeStore::RenormalizeIfNeeded() {
  if (scale_ >= kRenormScale) return;
  for (double& w : raw_weight_) w *= scale_;
  for (auto& [v, d] : raw_degree_) d *= scale_;
  total_raw_ *= scale_;
  scale_ = 1.0;
}

void OnlineEdgeStore::AddDegree(VertexId v, double raw_w) {
  raw_degree_[v] += raw_w;
}

bool OnlineEdgeStore::DebugCheckConsistent(bool after_decay) const {
  if constexpr (!kDebugChecksEnabled) return true;
  (void)after_decay;
  ACTOR_DCHECK(src_.size() == dst_.size() &&
               src_.size() == raw_weight_.size() &&
               src_.size() == index_.size())
      << "array/index size drift: " << src_.size() << "/" << dst_.size()
      << "/" << raw_weight_.size() << "/" << index_.size();
  double sum = 0.0;
  std::unordered_map<VertexId, double> degrees;
  for (std::size_t i = 0; i < raw_weight_.size(); ++i) {
    ACTOR_DCHECK(src_[i] < dst_[i])
        << "edge " << i << " not canonically oriented";
    const auto it = index_.find(PackKey(src_[i], dst_[i]));
    ACTOR_DCHECK(it != index_.end() && it->second == i)
        << "hash index does not map edge " << i << " to its slot";
    ACTOR_DCHECK_FINITE(raw_weight_[i]);
    ACTOR_DCHECK(!after_decay ||
                 raw_weight_[i] * scale_ >= min_weight_ * (1.0 - 1e-9))
        << "edge " << i << " effective weight " << raw_weight_[i] * scale_
        << " below min_weight " << min_weight_;
    sum += raw_weight_[i];
    degrees[src_[i]] += raw_weight_[i];
    degrees[dst_[i]] += raw_weight_[i];
  }
  ACTOR_DCHECK(std::fabs(sum - total_raw_) <=
               1e-9 * std::max(1.0, std::fabs(sum)))
      << "cached raw total " << total_raw_ << " vs recomputed " << sum;
  ACTOR_DCHECK(degrees.size() == raw_degree_.size())
      << "degree map holds " << raw_degree_.size() << " vertices, expected "
      << degrees.size();
  for (const auto& [v, d] : degrees) {
    const auto it = raw_degree_.find(v);
    ACTOR_DCHECK(it != raw_degree_.end()) << "vertex " << v << " lost degree";
    ACTOR_DCHECK(std::fabs(it->second - d) <= 1e-9 * std::max(1.0, d))
        << "vertex " << v << " degree " << it->second << " vs recomputed "
        << d;
  }
  return true;
}

}  // namespace actor
