#ifndef ACTOR_CORE_ONLINE_EDGE_STORE_H_
#define ACTOR_CORE_ONLINE_EDGE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "util/logging.h"

namespace actor {

/// Decaying undirected co-occurrence edge store for one edge type of the
/// streaming pipeline (docs/streaming.md).
///
/// The store keeps live edges in *flat, index-stable arrays* (`src`/`dst`/
/// raw weights) plus a packed-pair hash index, so the per-batch re-embed
/// cycle can rebuild its alias sampler straight from a contiguous weight
/// vector instead of re-flattening a hash map — the incremental rebuild
/// path of the OnlineActor substrate port.
///
/// Two structural properties make the decay cycle cheap:
///
/// * **Lazy uniform decay.** `Decay(f)` multiplies one scalar
///   (`weight_scale()`), not every weight: effective weight = raw x scale.
///   Because the decay is uniform, the *relative* sampling distribution —
///   and therefore any alias table built over the raw weights — is
///   unchanged by decay alone. Only edge drops and `Accumulate()` calls
///   invalidate samplers, which is what `version()` tracks.
/// * **Swap-remove compaction.** Edges whose effective weight falls below
///   `min_weight` are dropped by swapping the last live edge into their
///   slot, so the arrays stay dense with no tombstones and no reallocation
///   churn.
///
/// Per-vertex decayed degrees (the d^(3/4) negative-sampling masses) are
/// maintained incrementally under the same uniform-scale trick.
///
/// Thread-compatibility: mutations are single-threaded (the ingest phase);
/// during the sharded re-embed phase the store is read-only and safe to
/// read from any number of worker threads.
class OnlineEdgeStore {
 public:
  OnlineEdgeStore() = default;

  /// Sets the drop threshold for decayed edges. Must be > 0 (a zero
  /// threshold would let edges decay toward denormal weights forever).
  void set_min_weight(double min_weight) {
    ACTOR_DCHECK(min_weight > 0.0)
        << "min_weight must be > 0, got " << min_weight;
    min_weight_ = min_weight;
  }
  double min_weight() const { return min_weight_; }

  /// Adds `w` (effective) to the undirected edge {a, b}, creating it when
  /// absent. Self-loops and invalid endpoints are caller bugs.
  void Accumulate(VertexId a, VertexId b, double w = 1.0);

  /// Multiplies every live weight by `factor` in (0, 1] (O(1) via the
  /// shared scale), then drops edges whose effective weight fell below
  /// min_weight(). factor == 1 is a no-op (the "never forget" mode).
  void Decay(double factor);

  /// Number of live undirected edges.
  std::size_t size() const { return src_.size(); }
  bool empty() const { return src_.empty(); }

  /// Endpoint arrays, index-aligned with raw_weights(). For entry i the
  /// canonical orientation is src()[i] < dst()[i]; samplers that need both
  /// directions draw the orientation separately.
  const std::vector<VertexId>& src() const { return src_; }
  const std::vector<VertexId>& dst() const { return dst_; }

  /// Raw (pre-scale) weights. Proportional to the effective weights — an
  /// alias table built over this vector samples the decayed distribution
  /// exactly, with no per-edge multiplication.
  const std::vector<double>& raw_weights() const { return raw_weight_; }

  /// Current uniform scale; effective weight of edge i is
  /// raw_weights()[i] * weight_scale().
  double weight_scale() const { return scale_; }

  /// Effective (decayed) weight of edge i.
  double weight(std::size_t i) const {
    ACTOR_DCHECK(i < raw_weight_.size())
        << "edge " << i << " of " << raw_weight_.size();
    return raw_weight_[i] * scale_;
  }

  /// Effective weight of the undirected edge {a, b}; 0 when not live.
  double EdgeWeight(VertexId a, VertexId b) const;

  /// Sum of all effective weights.
  double total_weight() const { return total_raw_ * scale_; }

  /// Raw per-vertex decayed degrees (sum of incident raw weights), for
  /// building the noise distribution ∝ degree^(3/4). Uniformly scaled like
  /// the edge weights, so relative masses survive decay unchanged.
  const std::unordered_map<VertexId, double>& raw_degrees() const {
    return raw_degree_;
  }

  /// Monotonic counter bumped whenever the *relative* sampling
  /// distribution changes (Accumulate, or drops during Decay). Uniform
  /// decay alone does not bump it — samplers keyed on version() stay valid
  /// across pure-decay batches.
  uint64_t version() const { return version_; }

  /// Debug-only O(E + V) consistency sweep: cached totals match the
  /// arrays, the hash index is exact, and degrees equal the incident-weight
  /// sums. With `after_decay` the decayed-weight floor is also enforced:
  /// every live effective weight must be >= min_weight (Decay() just
  /// compacted anything below it away; an Accumulate() may legitimately
  /// insert smaller edges between decays). Returns true so it can sit
  /// inside ACTOR_DCHECK.
  bool DebugCheckConsistent(bool after_decay = false) const;

 private:
  static uint64_t PackKey(VertexId a, VertexId b) {
    const uint64_t lo = static_cast<uint32_t>(a < b ? a : b);
    const uint64_t hi = static_cast<uint32_t>(a < b ? b : a);
    return (lo << 32) | hi;
  }

  /// Folds the pending scale into the raw weights when the scale becomes
  /// tiny, preventing raw-weight blow-up on long streams. Distribution-
  /// preserving, so samplers stay valid.
  void RenormalizeIfNeeded();

  void AddDegree(VertexId v, double raw_w);

  double min_weight_ = 0.05;
  double scale_ = 1.0;
  double total_raw_ = 0.0;
  uint64_t version_ = 0;

  std::vector<VertexId> src_;
  std::vector<VertexId> dst_;
  std::vector<double> raw_weight_;
  std::unordered_map<uint64_t, uint32_t> index_;  // packed pair -> slot
  std::unordered_map<VertexId, double> raw_degree_;
};

}  // namespace actor

#endif  // ACTOR_CORE_ONLINE_EDGE_STORE_H_
