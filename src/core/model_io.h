#ifndef ACTOR_CORE_MODEL_IO_H_
#define ACTOR_CORE_MODEL_IO_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/actor.h"
#include "graph/graph_builder.h"
#include "util/result.h"

namespace actor {

/// Persists a trained model for downstream use without retraining:
///   <dir>/center.txt    center vectors (EmbeddingMatrix text format)
///   <dir>/context.txt   context vectors
///   <dir>/vertices.tsv  one row per vertex: id \t type \t name
/// The directory is created if missing.
Status SaveActorModel(const ActorModel& model, const BuiltGraphs& graphs,
                      const std::string& dir);

/// A model reloaded from disk: embeddings plus the vertex catalogue, with
/// name-based lookup so queries work without the original graphs.
class LoadedModel {
 public:
  static Result<LoadedModel> Load(const std::string& dir);

  const EmbeddingMatrix& center() const { return center_; }
  const EmbeddingMatrix& context() const { return context_; }
  int32_t num_vertices() const { return center_.rows(); }

  VertexType vertex_type(VertexId v) const { return types_[v]; }
  const std::string& vertex_name(VertexId v) const { return names_[v]; }

  /// Vertex id for a unit name ("coffee", "T3(19:17)", "user42"); -1 when
  /// unknown.
  VertexId Lookup(const std::string& name) const;

  /// Top-k vertices of `type` by cosine against vertex `query`.
  std::vector<std::pair<VertexId, double>> NearestOfType(VertexId query,
                                                         VertexType type,
                                                         int k) const;

 private:
  EmbeddingMatrix center_;
  EmbeddingMatrix context_;
  std::vector<VertexType> types_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, VertexId> index_;
};

}  // namespace actor

#endif  // ACTOR_CORE_MODEL_IO_H_
