#ifndef ACTOR_CORE_ACTOR_H_
#define ACTOR_CORE_ACTOR_H_

#include <cstdint>
#include <memory>

#include "embedding/dirty_rows.h"
#include "embedding/embedding_matrix.h"
#include "embedding/line.h"
#include "graph/graph_builder.h"
#include "serve/model_snapshot.h"
#include "util/result.h"

namespace actor {

class ThreadPool;

/// Hyper-parameters of ACTOR (Algorithm 1). Paper defaults: d = 300,
/// η = 0.02, K = 1, m = 256, MaxEpoch = 100; this library defaults to a
/// laptop-scale d and derives the per-epoch sample budget from the graph
/// size (see samples_per_edge).
struct ActorOptions {
  int32_t dim = 32;
  /// K: number of negative samples per step (Eq. (7)).
  int negatives = 1;
  /// η: learning rate at epoch 0; decays linearly to 1e-3 of itself.
  float initial_lr = 0.02f;
  /// MaxEpoch.
  int epochs = 10;
  /// Across the full run, each directed edge is sampled this many times in
  /// expectation; the per-epoch batch for edge type e is
  /// |E_e| * samples_per_edge / epochs (the paper's fixed batch m plays
  /// the same role).
  int samples_per_edge = 20;
  int num_threads = 1;
  uint64_t seed = 17;

  /// Externally-owned persistent worker pool shared by the LINE
  /// pre-trainer, the edge-sampling trainer, and the record loop. When
  /// null and num_threads > 1, TrainActor creates one pool for the run.
  /// Callers running many configurations back to back (the Fig. 12 thread
  /// sweep, parameter tuning) pass one pool so workers are spawned once
  /// per process instead of once per run. Must outlive the call; when
  /// num_threads > 1 its worker count overrides num_threads, and
  /// num_threads <= 1 ignores the pool (sequential, deterministic run).
  ThreadPool* pool = nullptr;

  /// Inter-record structure (ablation "ACTOR w/o inter" disables): LINE
  /// pre-training of the user interaction graph, user-guided
  /// initialization, and training of M_inter = {UT, UW, UL}.
  bool use_inter = true;
  /// Intra-record bag-of-words structure (ablation "ACTOR w/o intra"
  /// disables): words of a record act as one composite center vector
  /// (footnote 4; realized as the mean for numerical stability — see
  /// DESIGN.md). When false, LW/WT/WW edges train word-by-word.
  bool use_bag_of_words = true;

  /// Initialize activity-graph vertices from the pre-trained user vectors
  /// (Algorithm 1 line 4). Requires use_inter and a non-empty user
  /// interaction graph.
  bool init_from_users = true;

  /// Use the paper's literal *sum* composite for the bag of words
  /// (footnote 4) instead of the mean. The sum saturates the logistic
  /// loss at small d — kept for the design-ablation bench; see DESIGN.md
  /// §2.5.
  bool bow_sum_composite = false;

  /// Sample budget for the LINE pre-training pass on the user graph, as
  /// samples per UU edge.
  int user_pretrain_samples_per_edge = 200;
};

/// Training statistics for the scalability experiments (Fig. 12).
struct ActorStats {
  double pretrain_seconds = 0.0;
  double train_seconds = 0.0;
  int64_t edge_steps = 0;     // plain edge-sampling SGD steps
  int64_t record_steps = 0;   // bag-of-words record steps
};

/// A trained ACTOR model: the center vectors x_i used by downstream tasks
/// and the context vectors x'_i (Algorithm 1, line 12).
struct ActorModel {
  EmbeddingMatrix center;
  EmbeddingMatrix context;
  ActorStats stats;
  /// Rows (center and context, one union set) mutated since the last
  /// publish. TrainActor leaves every row marked (a fresh model is fully
  /// dirty); callers that keep training through EdgeSamplingTrainer with
  /// TrainOptions::dirty_rows = &dirty and re-publish with
  /// PublishActorModel(..., prev) get delta publishes — Clear() it after
  /// each publish (docs/serving.md).
  DirtyRowSet dirty;
};

/// Trains ACTOR on built graphs (Algorithm 1, lines 3-12; hotspot
/// detection and graph construction are the caller's lines 1-2 via
/// DetectHotspots/BuildGraphs). Deterministic given options.seed and
/// num_threads == 1.
Result<ActorModel> TrainActor(const BuiltGraphs& graphs,
                              const ActorOptions& options);

/// Publish of a batch-trained model: copies center and context into an
/// immutable ModelSnapshot that shares the graphs / hotspots / vocabulary
/// it was trained against (vocab may be null when keyword lookup is not
/// needed). The snapshot version is the model's total SGD step count
/// (edge + record steps) — monotone within a training run, the batch
/// analogue of the OnlineEdgeStore::version() scheme. Callers going
/// through the eval pipeline usually use PreparedDataset::Snapshot()
/// instead, which fills the shared structures in.
///
/// With `prev` (a snapshot previously published from the same model), the
/// copy is a delta publish: only chunks containing rows marked in
/// model.dirty are copied, the rest are shared with `prev`. The caller
/// clears model.dirty after a successful publish.
std::shared_ptr<const ModelSnapshot> PublishActorModel(
    const ActorModel& model, std::shared_ptr<const BuiltGraphs> graphs,
    std::shared_ptr<const Hotspots> hotspots,
    std::shared_ptr<const Vocabulary> vocab = nullptr,
    const ModelSnapshot* prev = nullptr);

}  // namespace actor

#endif  // ACTOR_CORE_ACTOR_H_
