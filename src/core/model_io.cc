#include "core/model_io.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/string_util.h"
#include "util/vec_math.h"

namespace actor {
namespace {

Result<VertexType> ParseVertexType(const std::string& s) {
  if (s == "T") return VertexType::kTime;
  if (s == "L") return VertexType::kLocation;
  if (s == "W") return VertexType::kWord;
  if (s == "U") return VertexType::kUser;
  return Status::InvalidArgument("unknown vertex type: " + s);
}

}  // namespace

Status SaveActorModel(const ActorModel& model, const BuiltGraphs& graphs,
                      const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create directory " + dir);
  if (model.center.rows() != graphs.activity.num_vertices()) {
    return Status::InvalidArgument(
        "model rows do not match the activity graph vertex count");
  }
  ACTOR_RETURN_NOT_OK(model.center.Save(dir + "/center.txt"));
  ACTOR_RETURN_NOT_OK(model.context.Save(dir + "/context.txt"));

  std::ofstream out(dir + "/vertices.tsv");
  if (!out) return Status::IOError("cannot write vertices.tsv in " + dir);
  for (VertexId v = 0; v < graphs.activity.num_vertices(); ++v) {
    out << v << '\t' << VertexTypeName(graphs.activity.vertex_type(v))
        << '\t' << graphs.activity.vertex_name(v) << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: vertices.tsv");
  return Status::OK();
}

Result<LoadedModel> LoadedModel::Load(const std::string& dir) {
  LoadedModel model;
  ACTOR_ASSIGN_OR_RETURN(model.center_,
                         EmbeddingMatrix::Load(dir + "/center.txt"));
  ACTOR_ASSIGN_OR_RETURN(model.context_,
                         EmbeddingMatrix::Load(dir + "/context.txt"));
  if (model.center_.rows() != model.context_.rows() ||
      model.center_.dim() != model.context_.dim()) {
    return Status::InvalidArgument(
        "center/context shapes disagree in " + dir);
  }

  std::ifstream in(dir + "/vertices.tsv");
  if (!in) return Status::IOError("cannot read vertices.tsv in " + dir);
  model.types_.resize(model.center_.rows());
  model.names_.resize(model.center_.rows());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 3) {
      return Status::InvalidArgument("malformed vertices.tsv row: " + line);
    }
    const VertexId v = static_cast<VertexId>(std::strtol(
        fields[0].c_str(), nullptr, 10));
    if (v < 0 || v >= model.center_.rows()) {
      return Status::OutOfRange("vertex id out of range in vertices.tsv");
    }
    ACTOR_ASSIGN_OR_RETURN(model.types_[v], ParseVertexType(fields[1]));
    model.names_[v] = fields[2];
    model.index_[fields[2]] = v;
    ++rows;
  }
  if (rows != static_cast<std::size_t>(model.center_.rows())) {
    return Status::InvalidArgument(StrPrintf(
        "vertices.tsv has %zu rows but the matrix has %d", rows,
        model.center_.rows()));
  }
  return model;
}

VertexId LoadedModel::Lookup(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidVertex : it->second;
}

std::vector<std::pair<VertexId, double>> LoadedModel::NearestOfType(
    VertexId query, VertexType type, int k) const {
  std::vector<std::pair<VertexId, double>> results;
  const std::size_t dim = static_cast<std::size_t>(center_.dim());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    if (v == query || types_[v] != type) continue;
    results.emplace_back(v, Cosine(center_.row(query), center_.row(v), dim));
  }
  const std::size_t keep =
      std::min<std::size_t>(std::max(k, 0), results.size());
  std::partial_sort(
      results.begin(), results.begin() + keep, results.end(),
      [](const auto& a, const auto& b) { return a.second > b.second; });
  results.resize(keep);
  return results;
}

}  // namespace actor
