#include "embedding/line.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "embedding/negative_sampler.h"
#include "embedding/sgd.h"
#include "graph/alias_table.h"
#include "util/thread_pool.h"
#include "util/vec_math.h"

namespace actor {
namespace {

struct PooledEdges {
  std::vector<VertexId> src;
  std::vector<VertexId> dst;
  std::vector<double> weight;
};

PooledEdges PoolEdges(const Heterograph& graph,
                      const std::vector<EdgeType>& types) {
  PooledEdges pooled;
  for (EdgeType e : types) {
    const auto& edges = graph.edges(e);
    pooled.src.insert(pooled.src.end(), edges.src.begin(), edges.src.end());
    pooled.dst.insert(pooled.dst.end(), edges.dst.begin(), edges.dst.end());
    pooled.weight.insert(pooled.weight.end(), edges.weight.begin(),
                         edges.weight.end());
  }
  return pooled;
}

std::vector<EdgeType> NonEmptyTypes(const Heterograph& graph) {
  std::vector<EdgeType> types;
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    if (graph.edges(static_cast<EdgeType>(e)).size() > 0) {
      types.push_back(static_cast<EdgeType>(e));
    }
  }
  return types;
}

}  // namespace

Result<LineEmbedding> TrainLine(const Heterograph& graph,
                                const LineOptions& options) {
  if (!graph.finalized()) {
    return Status::FailedPrecondition("graph must be finalized");
  }
  if (options.dim <= 0) {
    return Status::InvalidArgument("dim must be positive");
  }
  if (options.order != 1 && options.order != 2) {
    return Status::InvalidArgument("order must be 1 or 2");
  }
  std::vector<EdgeType> types =
      options.edge_types.empty() ? NonEmptyTypes(graph) : options.edge_types;
  PooledEdges pooled = PoolEdges(graph, types);
  if (pooled.src.empty()) {
    return Status::InvalidArgument("no edges of the requested types");
  }
  ACTOR_ASSIGN_OR_RETURN(AliasTable edge_table,
                         AliasTable::Create(pooled.weight));
  ACTOR_ASSIGN_OR_RETURN(GlobalNegativeSampler noise,
                         GlobalNegativeSampler::Create(graph, types));

  LineEmbedding result;
  result.center = EmbeddingMatrix(graph.num_vertices(), options.dim);
  Rng init_rng(options.seed);
  result.center.InitUniform(init_rng);
  // Second order uses a distinct context matrix initialized to zero
  // (word2vec convention); first order shares the vertex matrix.
  const bool second_order = options.order == 2;
  if (second_order) {
    result.context = EmbeddingMatrix(graph.num_vertices(), options.dim);
    result.context.InitZero();
  }
  EmbeddingMatrix* context = second_order ? &result.context : &result.center;

  const int64_t total_samples =
      options.total_samples > 0
          ? options.total_samples
          : static_cast<int64_t>(pooled.src.size()) * options.samples_per_edge;
  const SigmoidTable sigmoid;

  std::atomic<int64_t> progress{0};
  // Run on the caller's persistent pool when provided; otherwise spin up a
  // pool for this call (only when actually multi-threaded). num_threads <= 1
  // ignores any pool: sequential and bit-deterministic.
  ThreadPool* pool = options.num_threads > 1 ? options.pool : nullptr;
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr && options.num_threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options.num_threads));
    pool = owned_pool.get();
  }
  // Per-shard gradient scratch, allocated at the dispatch boundary: the
  // shard body runs on the hot path and must not allocate.
  const std::size_t dim = static_cast<std::size_t>(options.dim);
  const std::size_t num_shards = pool == nullptr ? 1 : pool->num_threads();
  std::vector<float> shard_grad(num_shards * dim);
  float* const grad_base = shard_grad.data();
  // The analyzer derives this lambda's HOGWILD scope from the ShardedRange
  // dispatch below (shared rows only through the fused kernels).
  auto shard = [&](int thread_id, int64_t samples) {
    Rng rng(ShardSeed(options.seed, /*step=*/0x11e5u, thread_id));
    float* const grad = grad_base + static_cast<std::size_t>(thread_id) * dim;
    for (int64_t i = 0; i < samples; ++i) {
      // Linear learning-rate decay over the global budget.
      const int64_t done = progress.fetch_add(1, std::memory_order_relaxed);
      const float frac =
          static_cast<float>(done) / static_cast<float>(total_samples);
      const float lr =
          std::max(options.initial_lr * (1.0f - frac), options.initial_lr * 1e-3f);
      const std::size_t idx = edge_table.Sample(rng);
      const VertexId u = pooled.src[idx];
      const VertexId v = pooled.dst[idx];
      Zero(grad, dim);
      NegativeSamplingUpdate(
          result.center.row(u), v, options.negatives, lr, context, sigmoid,
          rng, [&noise](Rng& r) { return noise.Sample(r); }, grad);
      Add(grad, result.center.row(u), dim);
    }
  };

  if (pool == nullptr || pool->num_threads() == 1) {
    shard(0, total_samples);
  } else {
    pool->ShardedRange(0, static_cast<std::size_t>(total_samples),
                       [&shard](int t, std::size_t lo, std::size_t hi) {
                         shard(t, static_cast<int64_t>(hi - lo));
                       });
  }

  if (!second_order) result.context = result.center.Clone();
  return result;
}

}  // namespace actor
