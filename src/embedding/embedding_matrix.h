#ifndef ACTOR_EMBEDDING_EMBEDDING_MATRIX_H_
#define ACTOR_EMBEDDING_EMBEDDING_MATRIX_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

namespace actor {

/// Row-major dense matrix of embedding vectors: one row per vertex. Rows
/// are updated in place by the (lock-free) SGD trainers, so the storage is
/// plain floats with no per-row synchronization — the HOGWILD [45] model.
///
/// Every row starts on a 32-byte boundary: the row stride is dim rounded up
/// to 8 floats and the buffer itself is 32-byte aligned, so the AVX2
/// kernels in util/vec_math.* always see aligned row pointers and rows
/// never straddle each other's cache lines unnecessarily. Padding floats
/// are kept at zero and are never serialized. Consumers that iterate
/// entries must go through row(i) — the buffer is NOT contiguous across
/// rows when dim is not a multiple of 8.
class EmbeddingMatrix {
 public:
  /// Row alignment in bytes (one AVX2 vector).
  static constexpr std::size_t kRowAlignment = 32;

  EmbeddingMatrix() = default;
  EmbeddingMatrix(int32_t rows, int32_t dim);

  EmbeddingMatrix(EmbeddingMatrix&&) = default;
  EmbeddingMatrix& operator=(EmbeddingMatrix&&) = default;
  EmbeddingMatrix(const EmbeddingMatrix&) = delete;
  EmbeddingMatrix& operator=(const EmbeddingMatrix&) = delete;

  /// Deep copy (explicit, because rows * dim can be large).
  EmbeddingMatrix Clone() const;

  int32_t rows() const { return rows_; }
  int32_t dim() const { return dim_; }
  /// Floats between consecutive row starts (dim rounded up to 8).
  std::size_t stride() const { return stride_; }
  bool empty() const { return rows_ == 0 || dim_ == 0; }

  float* row(int32_t i) {
    ACTOR_DCHECK(i >= 0 && i < rows_) << "row " << i << " of " << rows_;
    return data_.get() + static_cast<std::size_t>(i) * stride_;
  }
  const float* row(int32_t i) const {
    ACTOR_DCHECK(i >= 0 && i < rows_) << "row " << i << " of " << rows_;
    return data_.get() + static_cast<std::size_t>(i) * stride_;
  }

  /// Debug-only full-matrix invariant sweep: every entry finite (HOGWILD
  /// updates can silently propagate NaN through shared rows), every padding
  /// float still zero, and the buffer still kRowAlignment-aligned. No-op in
  /// release builds; returns true so it can sit inside assertions.
  bool DebugValidate() const;

  /// word2vec-style initialization: U(-0.5/dim, 0.5/dim) per entry, drawn
  /// in row-major entry order (padding entries stay zero and consume no
  /// draws, so the stream is independent of the stride).
  void InitUniform(Rng& rng);

  /// All-zero initialization (word2vec context matrices start at zero).
  void InitZero();

  /// Copies `src` (length dim) into row i.
  void SetRow(int32_t i, const float* src);

  /// Appends `n` rows initialized word2vec-style (U(-0.5/dim, 0.5/dim))
  /// when `rng` is given, or zero otherwise. Used by the streaming
  /// extension when new units appear mid-stream.
  void AppendRows(int32_t n, Rng* rng = nullptr);

  /// Text serialization: header "rows dim", then one row per line.
  Status Save(const std::string& path) const;
  static Result<EmbeddingMatrix> Load(const std::string& path);

 private:
  struct FreeDeleter {
    void operator()(float* p) const;
  };

  /// Allocates a zeroed, kRowAlignment-aligned buffer for `rows` rows of
  /// the given stride.
  static std::unique_ptr<float[], FreeDeleter> Allocate(std::size_t rows,
                                                        std::size_t stride);

  int32_t rows_ = 0;
  int32_t dim_ = 0;
  std::size_t stride_ = 0;
  std::unique_ptr<float[], FreeDeleter> data_;
};

}  // namespace actor

#endif  // ACTOR_EMBEDDING_EMBEDDING_MATRIX_H_
