#ifndef ACTOR_EMBEDDING_EMBEDDING_MATRIX_H_
#define ACTOR_EMBEDDING_EMBEDDING_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

namespace actor {

/// Row-major dense matrix of embedding vectors: one row per vertex. Rows
/// are updated in place by the (lock-free) SGD trainers, so the storage is
/// plain floats with no per-row synchronization — the HOGWILD [45] model.
class EmbeddingMatrix {
 public:
  EmbeddingMatrix() = default;
  EmbeddingMatrix(int32_t rows, int32_t dim)
      : rows_(rows), dim_(dim),
        data_(static_cast<std::size_t>(rows) * dim, 0.0f) {}

  EmbeddingMatrix(EmbeddingMatrix&&) = default;
  EmbeddingMatrix& operator=(EmbeddingMatrix&&) = default;
  EmbeddingMatrix(const EmbeddingMatrix&) = delete;
  EmbeddingMatrix& operator=(const EmbeddingMatrix&) = delete;

  /// Deep copy (explicit, because rows * dim can be large).
  EmbeddingMatrix Clone() const;

  int32_t rows() const { return rows_; }
  int32_t dim() const { return dim_; }
  bool empty() const { return data_.empty(); }

  float* row(int32_t i) {
    return data_.data() + static_cast<std::size_t>(i) * dim_;
  }
  const float* row(int32_t i) const {
    return data_.data() + static_cast<std::size_t>(i) * dim_;
  }

  /// word2vec-style initialization: U(-0.5/dim, 0.5/dim) per entry.
  void InitUniform(Rng& rng);

  /// All-zero initialization (word2vec context matrices start at zero).
  void InitZero();

  /// Copies `src` (length dim) into row i.
  void SetRow(int32_t i, const float* src);

  /// Appends `n` rows initialized word2vec-style (U(-0.5/dim, 0.5/dim))
  /// when `rng` is given, or zero otherwise. Used by the streaming
  /// extension when new units appear mid-stream.
  void AppendRows(int32_t n, Rng* rng = nullptr);

  /// Text serialization: header "rows dim", then one row per line.
  Status Save(const std::string& path) const;
  static Result<EmbeddingMatrix> Load(const std::string& path);

 private:
  int32_t rows_ = 0;
  int32_t dim_ = 0;
  std::vector<float> data_;
};

}  // namespace actor

#endif  // ACTOR_EMBEDDING_EMBEDDING_MATRIX_H_
