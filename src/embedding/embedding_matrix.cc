#include "embedding/embedding_matrix.h"

#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/vec_math.h"

namespace actor {

namespace {

std::size_t PaddedStride(int32_t dim) {
  constexpr std::size_t kFloatsPerVector =
      EmbeddingMatrix::kRowAlignment / sizeof(float);
  const std::size_t d = static_cast<std::size_t>(dim);
  return (d + kFloatsPerVector - 1) / kFloatsPerVector * kFloatsPerVector;
}

}  // namespace

void EmbeddingMatrix::FreeDeleter::operator()(float* p) const {
  std::free(p);
}

std::unique_ptr<float[], EmbeddingMatrix::FreeDeleter>
EmbeddingMatrix::Allocate(std::size_t rows, std::size_t stride) {
  const std::size_t bytes = rows * stride * sizeof(float);
  if (bytes == 0) return nullptr;
  // stride is a multiple of kRowAlignment/sizeof(float), so bytes is a
  // multiple of the alignment as std::aligned_alloc requires.
  void* p = std::aligned_alloc(kRowAlignment, bytes);
  ACTOR_CHECK(p != nullptr);
  std::memset(p, 0, bytes);
  return std::unique_ptr<float[], FreeDeleter>(static_cast<float*>(p));
}

EmbeddingMatrix::EmbeddingMatrix(int32_t rows, int32_t dim)
    : rows_(rows), dim_(dim), stride_(PaddedStride(dim)) {
  ACTOR_DCHECK(rows >= 0 && dim >= 0) << rows << "x" << dim;
  data_ = Allocate(static_cast<std::size_t>(rows), stride_);
  ACTOR_DCHECK(reinterpret_cast<std::uintptr_t>(data_.get()) %
                   kRowAlignment ==
               0)
      << "matrix buffer not " << kRowAlignment << "-byte aligned";
}

bool EmbeddingMatrix::DebugValidate() const {
  if constexpr (kDebugChecksEnabled) {
    ACTOR_DCHECK(reinterpret_cast<std::uintptr_t>(data_.get()) %
                     kRowAlignment ==
                 0)
        << "matrix buffer not " << kRowAlignment << "-byte aligned";
    for (int32_t r = 0; r < rows_; ++r) {
      const float* v = row(r);
      for (int32_t d = 0; d < dim_; ++d) {
        ACTOR_DCHECK(std::isfinite(v[d]))
            << "non-finite entry at (" << r << ", " << d << "): " << v[d];
      }
      for (std::size_t p = static_cast<std::size_t>(dim_); p < stride_; ++p) {
        ACTOR_DCHECK(v[p] == 0.0f)
            << "padding float " << p << " of row " << r << " is " << v[p];
      }
    }
  }
  return true;
}

EmbeddingMatrix EmbeddingMatrix::Clone() const {
  EmbeddingMatrix copy(rows_, dim_);
  if (data_ != nullptr) {
    std::memcpy(copy.data_.get(), data_.get(),
                static_cast<std::size_t>(rows_) * stride_ * sizeof(float));
  }
  return copy;
}

void EmbeddingMatrix::InitUniform(Rng& rng) {
  const float scale = dim_ > 0 ? 1.0f / static_cast<float>(dim_) : 0.0f;
  for (int32_t r = 0; r < rows_; ++r) {
    float* v = row(r);
    for (int32_t d = 0; d < dim_; ++d) {
      v[d] = (rng.UniformFloat() - 0.5f) * scale;
    }
  }
}

void EmbeddingMatrix::InitZero() {
  if (data_ != nullptr) {
    std::memset(data_.get(), 0,
                static_cast<std::size_t>(rows_) * stride_ * sizeof(float));
  }
}

void EmbeddingMatrix::SetRow(int32_t i, const float* src) {
  if constexpr (kDebugChecksEnabled) {
    for (int32_t d = 0; d < dim_; ++d) ACTOR_DCHECK_FINITE(src[d]);
  }
  Copy(src, row(i), static_cast<std::size_t>(dim_));
}

void EmbeddingMatrix::AppendRows(int32_t n, Rng* rng) {
  if (n <= 0) return;
  const int32_t old_rows = rows_;
  rows_ += n;
  auto grown = Allocate(static_cast<std::size_t>(rows_), stride_);
  if (data_ != nullptr) {
    std::memcpy(grown.get(), data_.get(),
                static_cast<std::size_t>(old_rows) * stride_ * sizeof(float));
  }
  data_ = std::move(grown);
  if (rng != nullptr && dim_ > 0) {
    const float scale = 1.0f / static_cast<float>(dim_);
    for (int32_t r = old_rows; r < rows_; ++r) {
      float* v = row(r);
      for (int32_t d = 0; d < dim_; ++d) {
        v[d] = (rng->UniformFloat() - 0.5f) * scale;
      }
    }
  }
}

Status EmbeddingMatrix::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  // max_digits10 so Load() reproduces every float bit-exactly.
  out.precision(9);
  out << rows_ << ' ' << dim_ << '\n';
  for (int32_t r = 0; r < rows_; ++r) {
    const float* v = row(r);
    for (int32_t d = 0; d < dim_; ++d) {
      if (d > 0) out << ' ';
      out << v[d];
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EmbeddingMatrix> EmbeddingMatrix::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  int32_t rows = 0, dim = 0;
  if (!(in >> rows >> dim) || rows < 0 || dim <= 0) {
    return Status::InvalidArgument("malformed embedding header in " + path);
  }
  EmbeddingMatrix m(rows, dim);
  for (int32_t r = 0; r < rows; ++r) {
    float* v = m.row(r);
    for (int32_t d = 0; d < dim; ++d) {
      if (!(in >> v[d])) {
        return Status::InvalidArgument(StrPrintf(
            "truncated embedding matrix at row %d in %s", r, path.c_str()));
      }
    }
  }
  return m;
}

}  // namespace actor
