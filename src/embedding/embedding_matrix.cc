#include "embedding/embedding_matrix.h"

#include <cstring>
#include <fstream>

#include "util/string_util.h"
#include "util/vec_math.h"

namespace actor {

EmbeddingMatrix EmbeddingMatrix::Clone() const {
  EmbeddingMatrix copy(rows_, dim_);
  copy.data_ = data_;
  return copy;
}

void EmbeddingMatrix::InitUniform(Rng& rng) {
  const float scale = dim_ > 0 ? 1.0f / static_cast<float>(dim_) : 0.0f;
  for (float& v : data_) {
    v = (rng.UniformFloat() - 0.5f) * scale;
  }
}

void EmbeddingMatrix::InitZero() {
  std::memset(data_.data(), 0, data_.size() * sizeof(float));
}

void EmbeddingMatrix::SetRow(int32_t i, const float* src) {
  Copy(src, row(i), static_cast<std::size_t>(dim_));
}

void EmbeddingMatrix::AppendRows(int32_t n, Rng* rng) {
  if (n <= 0) return;
  const std::size_t old_size = data_.size();
  rows_ += n;
  data_.resize(static_cast<std::size_t>(rows_) * dim_, 0.0f);
  if (rng != nullptr && dim_ > 0) {
    const float scale = 1.0f / static_cast<float>(dim_);
    for (std::size_t i = old_size; i < data_.size(); ++i) {
      data_[i] = (rng->UniformFloat() - 0.5f) * scale;
    }
  }
}

Status EmbeddingMatrix::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  // max_digits10 so Load() reproduces every float bit-exactly.
  out.precision(9);
  out << rows_ << ' ' << dim_ << '\n';
  for (int32_t r = 0; r < rows_; ++r) {
    const float* v = row(r);
    for (int32_t d = 0; d < dim_; ++d) {
      if (d > 0) out << ' ';
      out << v[d];
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EmbeddingMatrix> EmbeddingMatrix::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  int32_t rows = 0, dim = 0;
  if (!(in >> rows >> dim) || rows < 0 || dim <= 0) {
    return Status::InvalidArgument("malformed embedding header in " + path);
  }
  EmbeddingMatrix m(rows, dim);
  for (int32_t r = 0; r < rows; ++r) {
    float* v = m.row(r);
    for (int32_t d = 0; d < dim; ++d) {
      if (!(in >> v[d])) {
        return Status::InvalidArgument(StrPrintf(
            "truncated embedding matrix at row %d in %s", r, path.c_str()));
      }
    }
  }
  return m;
}

}  // namespace actor
