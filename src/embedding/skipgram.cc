#include "embedding/skipgram.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "embedding/sgd.h"
#include "graph/alias_table.h"
#include "util/thread_pool.h"
#include "util/vec_math.h"

namespace actor {

Result<LineEmbedding> TrainSkipGramOnWalks(
    const Heterograph& graph, const std::vector<std::vector<VertexId>>& walks,
    const SkipGramOptions& options) {
  if (!graph.finalized()) {
    return Status::FailedPrecondition("graph must be finalized");
  }
  if (options.dim <= 0 || options.window <= 0 || options.epochs <= 0) {
    return Status::InvalidArgument("dim/window/epochs must be positive");
  }
  if (walks.empty()) {
    return Status::InvalidArgument("no walks to train on");
  }

  // Walk-occurrence counts per vertex, for the noise distribution.
  std::vector<double> counts(graph.num_vertices(), 0.0);
  int64_t total_positions = 0;
  for (const auto& walk : walks) {
    for (VertexId v : walk) {
      counts[v] += 1.0;
      ++total_positions;
    }
  }

  // Per-type noise tables (metapath2vec++), plus a pooled fallback.
  struct Noise {
    std::vector<VertexId> candidates;
    std::unique_ptr<AliasTable> table;
  };
  Noise typed[kNumVertexTypes];
  Noise pooled;
  auto build_noise = [&](Noise* noise, const std::vector<VertexId>& verts) {
    std::vector<double> weights;
    for (VertexId v : verts) {
      if (counts[v] > 0.0) {
        noise->candidates.push_back(v);
        weights.push_back(std::pow(counts[v], 0.75));
      }
    }
    if (!noise->candidates.empty()) {
      auto table = AliasTable::Create(weights);
      if (table.ok()) {
        noise->table = std::make_unique<AliasTable>(table.MoveValueOrDie());
      }
    }
  };
  if (options.typed_negatives) {
    for (int t = 0; t < kNumVertexTypes; ++t) {
      build_noise(&typed[t], graph.VerticesOfType(static_cast<VertexType>(t)));
    }
  }
  std::vector<VertexId> all(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) all[v] = v;
  build_noise(&pooled, all);
  if (pooled.table == nullptr) {
    return Status::InvalidArgument("walks contain no vertices");
  }

  LineEmbedding result;
  result.center = EmbeddingMatrix(graph.num_vertices(), options.dim);
  result.context = EmbeddingMatrix(graph.num_vertices(), options.dim);
  Rng init_rng(options.seed);
  result.center.InitUniform(init_rng);
  result.context.InitZero();

  const SigmoidTable sigmoid;
  const std::size_t dim = static_cast<std::size_t>(options.dim);
  const int64_t total_steps =
      static_cast<int64_t>(options.epochs) * total_positions;
  // Walk positions processed so far, shared across shards so the linear
  // learning-rate decay follows the global schedule.
  std::atomic<int64_t> done{0};

  // Trains every walk in [walk_lo, walk_hi), all epochs. Shards update the
  // shared matrices lock-free (HOGWILD) — the analyzer derives this scope
  // from the named-lambda ShardedRange dispatch below.
  auto train_walks = [&](int shard, std::size_t walk_lo,
                         std::size_t walk_hi) {
    Rng rng(ShardSeed(options.seed, /*step=*/1, shard));
    std::vector<float> grad(dim);
    for (int epoch = 0; epoch < options.epochs; ++epoch) {
      for (std::size_t w = walk_lo; w < walk_hi; ++w) {
        const auto& walk = walks[w];
        const int len = static_cast<int>(walk.size());
        for (int i = 0; i < len; ++i) {
          const int64_t step = done.fetch_add(1, std::memory_order_relaxed);
          const float frac =
              static_cast<float>(step) / static_cast<float>(total_steps);
          const float lr = std::max(options.initial_lr * (1.0f - frac),
                                    options.initial_lr * 1e-3f);
          const VertexId center = walk[i];
          const int lo = std::max(0, i - options.window);
          const int hi = std::min(len - 1, i + options.window);
          for (int j = lo; j <= hi; ++j) {
            if (j == i) continue;
            const VertexId ctx = walk[j];
            const Noise* noise = &pooled;
            if (options.typed_negatives) {
              const Noise& t =
                  typed[static_cast<int>(graph.vertex_type(ctx))];
              if (t.table != nullptr) noise = &t;
            }
            Zero(grad.data(), dim);
            NegativeSamplingUpdate(
                result.center.row(center), ctx, options.negatives, lr,
                &result.context, sigmoid, rng,
                [noise](Rng& r) {
                  return noise->candidates[noise->table->Sample(r)];
                },
                grad.data());
            Add(grad.data(), result.center.row(center), dim);
          }
        }
      }
    }
  };

  // num_threads <= 1 ignores any provided pool (sequential path).
  ThreadPool* pool = options.num_threads > 1 ? options.pool : nullptr;
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr && options.num_threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options.num_threads));
    pool = owned_pool.get();
  }
  if (pool == nullptr || pool->num_threads() == 1) {
    train_walks(0, 0, walks.size());
  } else {
    pool->ShardedRange(0, walks.size(), train_walks);
  }
  return result;
}

}  // namespace actor
