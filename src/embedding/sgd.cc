#include "embedding/sgd.h"

#include <algorithm>
#include <array>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace actor {

EdgeSamplingTrainer::EdgeSamplingTrainer(
    const Heterograph* graph, EmbeddingMatrix* center,
    EmbeddingMatrix* context, const TypedNegativeSampler* negative_sampler,
    TrainOptions options)
    : graph_(graph),
      center_(center),
      context_(context),
      negative_sampler_(negative_sampler),
      options_(options) {
  ACTOR_CHECK(graph_ != nullptr && center_ != nullptr && context_ != nullptr &&
              negative_sampler_ != nullptr);
  // num_threads <= 1 is the sequential, bit-deterministic path: ignore any
  // provided pool entirely rather than sharding over its workers (a shared
  // pool from TrainActor may have more workers than this trainer wants).
  if (options_.num_threads > 1) {
    if (options_.pool != nullptr) {
      pool_ = options_.pool;
    } else {
      owned_pool_ = std::make_unique<ThreadPool>(
          static_cast<std::size_t>(options_.num_threads));
      pool_ = owned_pool_.get();
    }
  }
}

EdgeSamplingTrainer::~EdgeSamplingTrainer() = default;

Status EdgeSamplingTrainer::Prepare() {
  if (!graph_->finalized()) {
    return Status::FailedPrecondition("graph must be finalized");
  }
  if (center_->rows() != graph_->num_vertices() ||
      context_->rows() != graph_->num_vertices()) {
    return Status::InvalidArgument(StrPrintf(
        "matrix rows (%d, %d) do not match vertex count %d", center_->rows(),
        context_->rows(), graph_->num_vertices()));
  }
  if (center_->dim() != context_->dim()) {
    return Status::InvalidArgument("center/context dims differ");
  }
  edge_tables_.resize(kNumEdgeTypes);
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    const auto& edges = graph_->edges(static_cast<EdgeType>(e));
    if (edges.size() == 0) continue;
    ACTOR_ASSIGN_OR_RETURN(AliasTable table, AliasTable::Create(edges.weight));
    edge_tables_[e] = std::make_unique<AliasTable>(std::move(table));
  }
  prepared_ = true;
  return Status::OK();
}

Status EdgeSamplingTrainer::TrainEdgeType(EdgeType e, int64_t num_samples,
                                          float lr) {
  if (!prepared_) {
    return Status::FailedPrecondition("call Prepare() before training");
  }
  if (num_samples < 0) {
    return Status::InvalidArgument("num_samples must be >= 0");
  }
  if (edge_tables_[static_cast<int>(e)] == nullptr || num_samples == 0) {
    return Status::OK();  // nothing to train
  }
  const uint64_t step = static_cast<uint64_t>(steps_done_);
  DirtyRowSet* merged = options_.dirty_rows;
  const std::size_t dim = static_cast<std::size_t>(center_->dim());
  if (pool_ == nullptr || pool_->num_threads() == 1) {
    // Sequential path: no concurrent markers, so the merged set is written
    // directly.
    std::vector<float> grad(dim);
    TrainShard(e, num_samples, lr, ShardSeed(options_.seed, step, 0), merged,
               grad.data());
  } else {
    if (merged != nullptr) {
      shard_dirty_.resize(pool_->num_threads());
      for (auto& s : shard_dirty_) {
        s.Resize(center_->rows());
        s.Clear();
      }
    }
    // Per-shard gradient scratch, allocated at the dispatch boundary: the
    // shard bodies themselves are allocation-free (hot-path rule).
    std::vector<float> shard_grad(pool_->num_threads() * dim);
    float* const grad_base = shard_grad.data();
    pool_->ShardedRange(
        0, static_cast<std::size_t>(num_samples),
        [this, e, lr, step, merged, grad_base, dim](int shard, std::size_t lo,
                                                    std::size_t hi) {
          TrainShard(e, static_cast<int64_t>(hi - lo), lr,
                     ShardSeed(options_.seed, step, shard),
                     merged == nullptr
                         ? nullptr
                         : &shard_dirty_[static_cast<std::size_t>(shard)],
                     grad_base + static_cast<std::size_t>(shard) * dim);
        });
    if (merged != nullptr) {
      // Batch barrier: ShardedRange has returned, so the shard-local sets
      // are safely published to this thread.
      for (const auto& s : shard_dirty_) merged->MergeFrom(s);
    }
  }
  steps_done_ += num_samples;
  // HOGWILD updates cannot be checked per-step without serializing the
  // shards; instead sweep both matrices for NaN/inf (and torn padding)
  // after every batch in debug builds.
  ACTOR_DCHECK(center_->DebugValidate());
  ACTOR_DCHECK(context_->DebugValidate());
  return Status::OK();
}

// Runs concurrently on pool workers (the analyzer derives the HOGWILD
// scope from the ShardedRange dispatch): shared row access must go through
// the kernel API or RelaxedLoad/RelaxedStore, and the body is
// allocation-free — `grad` scratch is owned by the dispatch site.
void EdgeSamplingTrainer::TrainShard(EdgeType e, int64_t num_samples,
                                     float lr, uint64_t seed,
                                     DirtyRowSet* dirty, float* grad) {
  Rng rng(seed);
  const auto& edges = graph_->edges(e);
  const AliasTable& table = *edge_tables_[static_cast<int>(e)];
  const std::size_t dim = static_cast<std::size_t>(center_->dim());

  // Block-wise sampling: draw a block of edges up front and software-
  // prefetch their center/context rows, so the (random, cache-hostile) row
  // accesses of block i overlap with the alias-table draws of block i+1.
  constexpr int64_t kBlock = 64;
  std::array<std::size_t, kBlock> idx_buf;
  for (int64_t base = 0; base < num_samples; base += kBlock) {
    const int64_t block = std::min<int64_t>(kBlock, num_samples - base);
    for (int64_t i = 0; i < block; ++i) {
      const std::size_t idx = table.Sample(rng);
      idx_buf[static_cast<std::size_t>(i)] = idx;
      PrefetchRow(center_->row(edges.src[idx]), dim);
      PrefetchRow(context_->row(edges.dst[idx]), dim);
    }
    for (int64_t i = 0; i < block; ++i) {
      const std::size_t idx = idx_buf[static_cast<std::size_t>(i)];
      const VertexId u = edges.src[idx];
      const VertexId v = edges.dst[idx];
      const VertexType ctx_type = graph_->vertex_type(v);
      Zero(grad, dim);
      // Dirty tracking marks the rows this step mutates — u (center) and
      // v plus every negative draw (context rows) — into the shard-local
      // set, never a shared one (R4 discipline; merged at the barrier).
      NegativeSamplingUpdate(
          center_->row(u), v, options_.negatives, lr, context_, sigmoid_, rng,
          [this, e, ctx_type, dirty](Rng& r) {
            const VertexId n = negative_sampler_->Sample(e, ctx_type, r);
            if (dirty != nullptr && n != kInvalidVertex) dirty->Mark(n);
            return n;
          },
          grad);
      Add(grad, center_->row(u), dim);  // Eq. (12)
      if (dirty != nullptr) {
        dirty->Mark(u);
        dirty->Mark(v);
      }
    }
  }
}

}  // namespace actor
