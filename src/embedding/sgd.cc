#include "embedding/sgd.h"

#include <algorithm>
#include <thread>

#include "util/logging.h"
#include "util/string_util.h"

namespace actor {

EdgeSamplingTrainer::EdgeSamplingTrainer(
    const Heterograph* graph, EmbeddingMatrix* center,
    EmbeddingMatrix* context, const TypedNegativeSampler* negative_sampler,
    TrainOptions options)
    : graph_(graph),
      center_(center),
      context_(context),
      negative_sampler_(negative_sampler),
      options_(options) {
  ACTOR_CHECK(graph_ != nullptr && center_ != nullptr && context_ != nullptr &&
              negative_sampler_ != nullptr);
}

Status EdgeSamplingTrainer::Prepare() {
  if (!graph_->finalized()) {
    return Status::FailedPrecondition("graph must be finalized");
  }
  if (center_->rows() != graph_->num_vertices() ||
      context_->rows() != graph_->num_vertices()) {
    return Status::InvalidArgument(StrPrintf(
        "matrix rows (%d, %d) do not match vertex count %d", center_->rows(),
        context_->rows(), graph_->num_vertices()));
  }
  if (center_->dim() != context_->dim()) {
    return Status::InvalidArgument("center/context dims differ");
  }
  edge_tables_.resize(kNumEdgeTypes);
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    const auto& edges = graph_->edges(static_cast<EdgeType>(e));
    if (edges.size() == 0) continue;
    ACTOR_ASSIGN_OR_RETURN(AliasTable table, AliasTable::Create(edges.weight));
    edge_tables_[e] = std::make_unique<AliasTable>(std::move(table));
  }
  prepared_ = true;
  return Status::OK();
}

Status EdgeSamplingTrainer::TrainEdgeType(EdgeType e, int64_t num_samples,
                                          float lr) {
  if (!prepared_) {
    return Status::FailedPrecondition("call Prepare() before training");
  }
  if (num_samples < 0) {
    return Status::InvalidArgument("num_samples must be >= 0");
  }
  if (edge_tables_[static_cast<int>(e)] == nullptr || num_samples == 0) {
    return Status::OK();  // nothing to train
  }
  const int threads = std::max(1, options_.num_threads);
  if (threads == 1) {
    TrainShard(e, num_samples, lr, options_.seed + steps_done_);
  } else {
    const int64_t per_thread = (num_samples + threads - 1) / threads;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    int64_t remaining = num_samples;
    for (int t = 0; t < threads && remaining > 0; ++t) {
      const int64_t n = std::min<int64_t>(per_thread, remaining);
      remaining -= n;
      const uint64_t seed =
          options_.seed + steps_done_ + 0x9e3779b9ULL * (t + 1);
      pool.emplace_back(
          [this, e, n, lr, seed] { TrainShard(e, n, lr, seed); });
    }
    for (auto& th : pool) th.join();
  }
  steps_done_ += num_samples;
  return Status::OK();
}

void EdgeSamplingTrainer::TrainShard(EdgeType e, int64_t num_samples,
                                     float lr, uint64_t seed) {
  Rng rng(seed);
  const auto& edges = graph_->edges(e);
  const AliasTable& table = *edge_tables_[static_cast<int>(e)];
  const std::size_t dim = static_cast<std::size_t>(center_->dim());
  std::vector<float> grad(dim);
  for (int64_t i = 0; i < num_samples; ++i) {
    const std::size_t idx = table.Sample(rng);
    const VertexId u = edges.src[idx];
    const VertexId v = edges.dst[idx];
    const VertexType ctx_type = graph_->vertex_type(v);
    Zero(grad.data(), dim);
    NegativeSamplingUpdate(
        center_->row(u), v, options_.negatives, lr, context_, sigmoid_, rng,
        [this, e, ctx_type](Rng& r) {
          return negative_sampler_->Sample(e, ctx_type, r);
        },
        grad.data());
    Add(grad.data(), center_->row(u), dim);  // Eq. (12)
  }
}

}  // namespace actor
