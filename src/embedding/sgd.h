#ifndef ACTOR_EMBEDDING_SGD_H_
#define ACTOR_EMBEDDING_SGD_H_

#include <memory>
#include <vector>

#include "embedding/dirty_rows.h"
#include "embedding/embedding_matrix.h"
#include "embedding/negative_sampler.h"
#include "graph/alias_table.h"
#include "graph/heterograph.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/vec_math.h"

namespace actor {

class ThreadPool;

/// Derives the RNG seed for one trainer shard. Every input is passed
/// through SplitMix64 rounds so shard streams stay uncorrelated across
/// shards, training phases, and epochs — an additive scheme such as
/// `base + step + C * shard` hands xoshiro nearly identical seeds, which
/// its SplitMix64 seeding only partially decorrelates.
inline uint64_t ShardSeed(uint64_t base, uint64_t step, uint64_t shard) {
  uint64_t h = SplitMix64(base);
  h = SplitMix64(h ^ step);
  return SplitMix64(h ^ shard);
}

/// One negative-sampling objective evaluation (Eq. (7)) for a *given*
/// center vector against one positive context vertex plus `negatives`
/// noise vertices.
///
/// Performs the context-side updates of Eqs. (9)-(10) in place —
/// `positive_ctx` is the positive vertex's context row, `context_row(v)`
/// resolves each negative draw's — and *accumulates* the center-side
/// gradient of Eq. (8) into `grad_out` (length dim, caller-zeroed) instead
/// of applying it. This split lets one code path serve the plain per-edge
/// update (apply grad_out to the single center row), the bag-of-words
/// composite update of the intra-record meta-graph (footnote 4; apply
/// grad_out to every member word row), and the sharded trainer (context
/// rows resolved by vertex ownership).
///
/// `sample_negative(rng)` returns a noise vertex id (or kInvalidVertex to
/// skip one draw). Called from every trainer shard: context rows are
/// shared, so they must only be touched through the fused kernels (the
/// analyzer derives this HOGWILD scope from the dispatch call graph).
template <typename NegativeFn, typename ContextRowFn>
void NegativeSamplingUpdateRows(const float* center_vec, VertexId positive,
                                float* positive_ctx, std::size_t dim,
                                int negatives, float lr,
                                const SigmoidTable& sigmoid, Rng& rng,
                                NegativeFn&& sample_negative,
                                ContextRowFn&& context_row, float* grad_out) {
  // Positive term: label 1. FusedGradStep performs Eqs. (8)+(9) in one
  // pass over the context row (grad_out += g*ctx; ctx += g*center).
  {
    const float score = sigmoid(Dot(center_vec, positive_ctx, dim));
    const float g = (1.0f - score) * lr;  // Eq. (8)/(9) coefficient
    ACTOR_DCHECK_FINITE(g);
    FusedGradStep(g, center_vec, positive_ctx, grad_out, dim);
  }
  // Negative terms: label 0.
  for (int k = 0; k < negatives; ++k) {
    const VertexId neg = sample_negative(rng);
    if (neg == kInvalidVertex || neg == positive) continue;
    float* ctx = context_row(neg);
    const float score = sigmoid(Dot(center_vec, ctx, dim));
    const float g = -score * lr;  // Eq. (8)/(10) coefficient
    ACTOR_DCHECK_FINITE(g);
    FusedGradStep(g, center_vec, ctx, grad_out, dim);  // Eq. (10)
  }
}

/// The flat-matrix form: positive and negative context rows all resolve
/// through one EmbeddingMatrix. Delegates to NegativeSamplingUpdateRows, so
/// the sharded trainer — which resolves context rows through vertex
/// ownership (owned shard rows vs the remote-tile cache) — shares the exact
/// arithmetic and RNG-consumption order of this path (bit-identity at
/// shards=1 follows structurally; see docs/sharding.md).
template <typename NegativeFn>
void NegativeSamplingUpdate(const float* center_vec, VertexId positive,
                            int negatives, float lr, EmbeddingMatrix* context,
                            const SigmoidTable& sigmoid, Rng& rng,
                            NegativeFn&& sample_negative, float* grad_out) {
  const std::size_t dim = static_cast<std::size_t>(context->dim());
  NegativeSamplingUpdateRows(
      center_vec, positive, context->row(positive), dim, negatives, lr,
      sigmoid, rng, static_cast<NegativeFn&&>(sample_negative),
      [context](VertexId v) { return context->row(v); }, grad_out);
}

/// Shared options for the edge-sampling trainers.
struct TrainOptions {
  int32_t dim = 32;
  /// K in Eq. (7).
  int negatives = 1;
  /// η, the learning rate handed to TrainEdgeType by the caller's schedule.
  float initial_lr = 0.025f;
  int num_threads = 1;
  uint64_t seed = 1;
  /// Externally-owned persistent worker pool. When null and
  /// num_threads > 1 the trainer creates its own pool, kept alive for the
  /// trainer's lifetime — never per TrainEdgeType call. The pool must
  /// outlive the trainer; when num_threads > 1 its worker count overrides
  /// num_threads, and num_threads <= 1 ignores the pool (sequential,
  /// bit-deterministic path).
  ThreadPool* pool = nullptr;

  /// Dirty-row tracking for the delta publish path (docs/serving.md).
  /// When non-null, every TrainEdgeType call records the rows it touched —
  /// center rows, positive context rows, and negative draws, one union set
  /// — into this caller-owned set: shard-local sets inside the HOGWILD
  /// region, merged here at the batch barrier (after ShardedRange
  /// returns). Must cover the matrices' rows (Resize) and outlive the
  /// trainer. Null (default) disables tracking at zero cost.
  DirtyRowSet* dirty_rows = nullptr;
};

/// Asynchronous stochastic gradient trainer over typed edges (paper
/// §5.2.3): edges of a given type are drawn from an alias table, each draw
/// triggering one negative-sampling step. With num_threads > 1 the sample
/// budget is split across threads updating the shared matrices without
/// locks (HOGWILD [45]).
class EdgeSamplingTrainer {
 public:
  /// The graph, matrices, and sampler must outlive the trainer. `center`
  /// and `context` must both have graph.num_vertices() rows of equal dim.
  EdgeSamplingTrainer(const Heterograph* graph, EmbeddingMatrix* center,
                      EmbeddingMatrix* context,
                      const TypedNegativeSampler* negative_sampler,
                      TrainOptions options);

  // Out-of-line: owned_pool_ holds a forward-declared ThreadPool.
  ~EdgeSamplingTrainer();

  /// Builds the per-edge-type alias tables. Must be called once before
  /// TrainEdgeType. Edge types with no edges are skipped silently.
  Status Prepare();

  /// Runs `num_samples` SGD steps on edges of type `e` at learning rate
  /// `lr`, split across the configured threads. Each sampled directed edge
  /// (u -> v) takes u as center and v as context; negatives are drawn from
  /// the typed noise table of (e, type(v)). No-op (OK) when the type has
  /// no edges.
  Status TrainEdgeType(EdgeType e, int64_t num_samples, float lr);

  /// Total SGD steps executed so far.
  int64_t steps_done() const { return steps_done_; }

  const TrainOptions& options() const { return options_; }
  const SigmoidTable& sigmoid() const { return sigmoid_; }

  /// True once Prepare() succeeded.
  bool prepared() const { return prepared_; }

 private:
  /// `dirty` is the shard-local dirty set for this shard (or the merged
  /// set directly on the sequential path); null when tracking is off.
  /// `grad` is caller-owned gradient scratch of length dim() — shard
  /// bodies run on the hot path and must not allocate.
  void TrainShard(EdgeType e, int64_t num_samples, float lr, uint64_t seed,
                  DirtyRowSet* dirty, float* grad);

  const Heterograph* graph_;
  EmbeddingMatrix* center_;
  EmbeddingMatrix* context_;
  const TypedNegativeSampler* negative_sampler_;
  TrainOptions options_;
  SigmoidTable sigmoid_;
  bool prepared_ = false;
  std::vector<std::unique_ptr<AliasTable>> edge_tables_;  // per edge type
  int64_t steps_done_ = 0;
  ThreadPool* pool_ = nullptr;            // null => single-threaded
  std::unique_ptr<ThreadPool> owned_pool_;  // backs pool_ when not borrowed
  /// Per-shard dirty scratch, merged into options_.dirty_rows at the
  /// TrainEdgeType barrier (allocation-free at steady state).
  std::vector<DirtyRowSet> shard_dirty_;
};

}  // namespace actor

#endif  // ACTOR_EMBEDDING_SGD_H_
