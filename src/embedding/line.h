#ifndef ACTOR_EMBEDDING_LINE_H_
#define ACTOR_EMBEDDING_LINE_H_

#include <vector>

#include "embedding/embedding_matrix.h"
#include "graph/heterograph.h"
#include "util/result.h"

namespace actor {

class ThreadPool;

/// Options for LINE [24] training.
struct LineOptions {
  int32_t dim = 32;
  /// 1 preserves first-order proximity (shared vertex matrix on both sides
  /// of the sigmoid); 2 preserves second-order proximity (separate context
  /// matrix). Paper baseline uses second order.
  int order = 2;
  int negatives = 5;
  float initial_lr = 0.025f;
  /// Total sampled edges; 0 derives samples_per_edge * |directed edges|.
  int64_t total_samples = 0;
  int samples_per_edge = 50;
  int num_threads = 1;
  uint64_t seed = 3;
  /// Externally-owned persistent worker pool (e.g. TrainActor's); when
  /// null and num_threads > 1 a pool is created for the call. The pool's
  /// worker count overrides num_threads; num_threads <= 1 ignores the
  /// pool (sequential, bit-deterministic path).
  ThreadPool* pool = nullptr;
  /// Edge types to pool; empty means every non-empty type in the graph.
  /// LINE treats the pooled graph as homogeneous: one edge alias table,
  /// one degree-based noise distribution over all vertices.
  std::vector<EdgeType> edge_types;
};

/// A trained embedding pair. `center` holds the vertex representations
/// used by all downstream tasks; `context` is the output-side matrix (for
/// order 1 it is a copy of center).
struct LineEmbedding {
  EmbeddingMatrix center;
  EmbeddingMatrix context;
};

/// Trains LINE on the selected edge types of a finalized graph. Also used
/// to pre-train the user interaction graph in ACTOR (Algorithm 1, line 3)
/// with edge_types = {UU}.
Result<LineEmbedding> TrainLine(const Heterograph& graph,
                                const LineOptions& options);

}  // namespace actor

#endif  // ACTOR_EMBEDDING_LINE_H_
