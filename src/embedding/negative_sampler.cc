#include "embedding/negative_sampler.h"

#include <cmath>

namespace actor {

Result<TypedNegativeSampler> TypedNegativeSampler::Create(
    const Heterograph& graph, double power) {
  if (!graph.finalized()) {
    return Status::FailedPrecondition("graph must be finalized");
  }
  if (power < 0.0) {
    return Status::InvalidArgument("power must be non-negative");
  }
  TypedNegativeSampler sampler;
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    const EdgeType et = static_cast<EdgeType>(e);
    for (int t = 0; t < kNumVertexTypes; ++t) {
      const VertexType vt = static_cast<VertexType>(t);
      std::vector<VertexId> candidates;
      std::vector<double> weights;
      for (VertexId v : graph.VerticesOfType(vt)) {
        const double d = graph.Degree(et, v);
        if (d > 0.0) {
          candidates.push_back(v);
          weights.push_back(std::pow(d, power));
        }
      }
      if (candidates.empty()) continue;
      ACTOR_ASSIGN_OR_RETURN(AliasTable table, AliasTable::Create(weights));
      Table& slot = sampler.tables_[Index(et, vt)];
      slot.candidates = std::move(candidates);
      slot.alias = std::make_unique<AliasTable>(std::move(table));
    }
  }
  return sampler;
}

VertexId TypedNegativeSampler::Sample(EdgeType e, VertexType context_type,
                                      Rng& rng) const {
  const Table& slot = tables_[Index(e, context_type)];
  if (slot.alias == nullptr) return kInvalidVertex;
  return slot.candidates[slot.alias->Sample(rng)];
}

Result<GlobalNegativeSampler> GlobalNegativeSampler::Create(
    const Heterograph& graph, const std::vector<EdgeType>& edge_types,
    double power) {
  if (!graph.finalized()) {
    return Status::FailedPrecondition("graph must be finalized");
  }
  GlobalNegativeSampler sampler;
  std::vector<double> weights;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    double d = 0.0;
    for (EdgeType e : edge_types) d += graph.Degree(e, v);
    if (d > 0.0) {
      sampler.candidates_.push_back(v);
      weights.push_back(std::pow(d, power));
    }
  }
  if (sampler.candidates_.empty()) {
    return Status::InvalidArgument(
        "no vertex has degree in the given edge types");
  }
  ACTOR_ASSIGN_OR_RETURN(AliasTable table, AliasTable::Create(weights));
  sampler.alias_ = std::make_unique<AliasTable>(std::move(table));
  return sampler;
}

VertexId GlobalNegativeSampler::Sample(Rng& rng) const {
  return candidates_[alias_->Sample(rng)];
}

}  // namespace actor
