#ifndef ACTOR_EMBEDDING_NEGATIVE_SAMPLER_H_
#define ACTOR_EMBEDDING_NEGATIVE_SAMPLER_H_

#include <memory>
#include <vector>

#include "graph/alias_table.h"
#include "graph/heterograph.h"
#include "util/result.h"
#include "util/rng.h"

namespace actor {

/// Noise distribution P(v) ∝ d_v^power over candidate context vertices
/// (Eq. (7); power defaults to the word2vec 3/4).
///
/// The *typed* sampler keeps one table per (edge type, context vertex
/// type): negatives for a UT edge whose context is a T vertex are drawn
/// from T vertices by their UT-degree. This matches the per-edge-type
/// softmax of Eq. (2), whose normalization runs over contexts of the same
/// edge type.
class TypedNegativeSampler {
 public:
  static Result<TypedNegativeSampler> Create(const Heterograph& graph,
                                             double power = 0.75);

  /// Draws a negative context vertex of `context_type` for edge type `e`.
  /// Returns kInvalidVertex if no vertex of that type has degree in `e`.
  VertexId Sample(EdgeType e, VertexType context_type, Rng& rng) const;

 private:
  struct Table {
    std::vector<VertexId> candidates;
    std::unique_ptr<AliasTable> alias;
  };

  static int Index(EdgeType e, VertexType t) {
    return static_cast<int>(e) * kNumVertexTypes + static_cast<int>(t);
  }

  Table tables_[kNumEdgeTypes * kNumVertexTypes];
};

/// Homogeneous noise distribution over all vertices with degree summed
/// across the given edge types — the treatment plain LINE applies to the
/// activity graph (paper §6.2.3: LINE "is designed mainly for homogeneous
/// graph").
class GlobalNegativeSampler {
 public:
  static Result<GlobalNegativeSampler> Create(
      const Heterograph& graph, const std::vector<EdgeType>& edge_types,
      double power = 0.75);

  VertexId Sample(Rng& rng) const;

 private:
  std::vector<VertexId> candidates_;
  std::unique_ptr<AliasTable> alias_;
};

}  // namespace actor

#endif  // ACTOR_EMBEDDING_NEGATIVE_SAMPLER_H_
