#ifndef ACTOR_EMBEDDING_SKIPGRAM_H_
#define ACTOR_EMBEDDING_SKIPGRAM_H_

#include <vector>

#include "embedding/embedding_matrix.h"
#include "embedding/line.h"
#include "graph/heterograph.h"
#include "util/result.h"

namespace actor {

class ThreadPool;

/// Options for skip-gram training on random-walk corpora (the second half
/// of metapath2vec [25]).
struct SkipGramOptions {
  int32_t dim = 32;
  /// Window size each side of the center (paper §6.2.3 uses 3).
  int window = 3;
  int negatives = 5;
  float initial_lr = 0.025f;
  int epochs = 2;
  uint64_t seed = 11;
  /// Walks are sharded contiguously across threads; shards update the
  /// shared matrices lock-free (HOGWILD). 1 keeps training deterministic.
  int num_threads = 1;
  /// Externally-owned persistent worker pool; when null and
  /// num_threads > 1 a pool is created for the call.
  ThreadPool* pool = nullptr;
  /// metapath2vec++ heterogeneous negative sampling: negatives share the
  /// context vertex's type. When false, negatives come from the pooled
  /// walk-frequency distribution (plain metapath2vec).
  bool typed_negatives = true;
};

/// Trains skip-gram with negative sampling over vertex walks. Noise
/// distributions use walk-occurrence counts raised to 3/4. Returns the
/// (center, context) pair sized to graph.num_vertices().
Result<LineEmbedding> TrainSkipGramOnWalks(
    const Heterograph& graph, const std::vector<std::vector<VertexId>>& walks,
    const SkipGramOptions& options);

}  // namespace actor

#endif  // ACTOR_EMBEDDING_SKIPGRAM_H_
