#ifndef ACTOR_EMBEDDING_DIRTY_ROWS_H_
#define ACTOR_EMBEDDING_DIRTY_ROWS_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace actor {

/// Bitset over embedding-matrix rows recording which rows a trainer has
/// touched since the last publish. The delta-publish path (docs/serving.md)
/// copies only chunks containing dirty rows into the next ModelSnapshot and
/// shares the rest with the previous one, so Publish cost tracks the ingest
/// batch instead of the model.
///
/// Concurrency contract — the same HOGWILD shard discipline actor-lint R4
/// polices for embedding rows: a DirtyRowSet is *not* thread-safe. Inside a
/// sharded training region each shard marks its own shard-local set (or the
/// single merged set on the sequential path), and the merged set is folded
/// together with MergeFrom() at the batch barrier, after
/// ShardedRange()/Wait() returned. Never mark a shared set from inside a
/// hogwild region.
class DirtyRowSet {
 public:
  DirtyRowSet() = default;

  /// Grows (or shrinks) the tracked row range. Existing bits are kept;
  /// newly covered rows start clean. Callers appending rows to a matrix
  /// mark the appended rows themselves (a new row is by definition dirty
  /// relative to any earlier snapshot).
  void Resize(int32_t rows) {
    rows_ = rows;
    bits_.resize((static_cast<std::size_t>(rows) + 63) / 64, 0);
  }

  int32_t rows() const { return rows_; }

  void Mark(int32_t row) {
    ACTOR_DCHECK(row >= 0 && row < rows_) << "row " << row << " of " << rows_;
    bits_[static_cast<std::size_t>(row) >> 6] |=
        uint64_t{1} << (static_cast<std::size_t>(row) & 63);
  }

  bool Test(int32_t row) const {
    ACTOR_DCHECK(row >= 0 && row < rows_) << "row " << row << " of " << rows_;
    return (bits_[static_cast<std::size_t>(row) >> 6] >>
            (static_cast<std::size_t>(row) & 63)) &
           1;
  }

  void MarkAll() {
    for (auto& w : bits_) w = ~uint64_t{0};
  }

  /// All bits to clean; keeps the size (called after a successful publish —
  /// the new snapshot is exact, so nothing is dirty relative to it).
  void Clear() {
    for (auto& w : bits_) w = 0;
  }

  /// Folds a shard-local set into this one at the batch barrier. `other`
  /// may cover fewer rows (it was sized before rows were appended).
  void MergeFrom(const DirtyRowSet& other) {
    ACTOR_DCHECK(other.rows_ <= rows_);
    for (std::size_t i = 0; i < other.bits_.size(); ++i) {
      bits_[i] |= other.bits_[i];
    }
  }

  /// True when any row in [begin, end) is dirty. The chunk-COW copy asks
  /// this once per chunk, so it works word-wise, not bit-wise.
  bool AnyInRange(int32_t begin, int32_t end) const {
    if (begin >= end) return false;
    ACTOR_DCHECK(begin >= 0 && end <= rows_);
    const std::size_t first = static_cast<std::size_t>(begin) >> 6;
    const std::size_t last = (static_cast<std::size_t>(end) - 1) >> 6;
    for (std::size_t w = first; w <= last; ++w) {
      uint64_t word = bits_[w];
      if (w == first) word &= ~uint64_t{0} << (static_cast<std::size_t>(begin) & 63);
      if (w == last) {
        const std::size_t top = (static_cast<std::size_t>(end) - 1) & 63;
        word &= ~uint64_t{0} >> (63 - top);
      }
      if (word != 0) return true;
    }
    return false;
  }

  int32_t PopCount() const {
    int32_t n = 0;
    for (uint64_t w : bits_) {
      while (w != 0) {
        w &= w - 1;
        ++n;
      }
    }
    return n;
  }

 private:
  int32_t rows_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace actor

#endif  // ACTOR_EMBEDDING_DIRTY_ROWS_H_
